(* Multi-objective tuning on the Kripke time+energy surface (the
   paper's energy space: exec_time_capped and per-node package energy
   over the 17 820-configuration PKG_LIMIT space).

   Four methods get the same total evaluation budget and are scored
   by the hypervolume of the solution set each one actually returns,
   against one shared reference point (the per-objective medians of
   the full table — the tail of the distribution runs to ~450x the
   best time, so a reference at the maxima would saturate every
   method at ~99% of the achievable volume):

   - moo:     scalarised HiPerBOt (weighted-Chebyshev Moo campaigns),
              the budget split across a fan of fixed weight rays;
              deliverable: the pooled Pareto archive
   - random:  uniform random configurations; deliverable: every draw
              (random search has no model to distill)
   - so-time: single-objective HiPerBOt on execution time alone;
              deliverable: the one best configuration it returns
   - so-nrg:  the same on energy alone

   A single-objective tuner's answer is a point, so the volume it
   encloses is structurally partial however well it tunes — that is
   the multi-objective claim. For transparency the JSON also reports
   the hypervolume of the single-objective tuners' entire visited
   histories (hv_single_*_visited_mean): on this surface time and
   energy correlate enough that a 278-evaluation search trail covers
   most of the front incidentally, which is an artifact of scoring
   the trail rather than the answer, and carries no assertion.

   Two claims are asserted under the full protocol: the mean moo
   hypervolume must be at least the random-search mean and at least
   each single-objective mean. HIPERBOT_MOO_BUDGET overrides the
   total budget for CI smoke runs; the hypervolume assertions are
   skipped then (a handful of evaluations is pure noise) but the
   report, the front sanity checks (non-empty, mutually
   non-dominated), and the JSON field contract still hold. *)

let output_path = "BENCH_moo.json"
let n_rays = 5

let budget_override =
  match Sys.getenv_opt "HIPERBOT_MOO_BUDGET" with
  | None -> None
  | Some s -> (
      match int_of_string_opt s with
      | Some n when n >= n_rays -> Some n
      | _ ->
          failwith
            (Printf.sprintf "HIPERBOT_MOO_BUDGET must be an integer >= %d (one per ray)"
               n_rays))

let vector_of config = [| Hpcsim.Kripke.exec_time_capped config; Hpcsim.Kripke.energy config |]

let front_of_configs configs =
  let f = Hiperbot.Pareto.create ~arity:2 in
  List.iter (fun c -> ignore (Hiperbot.Pareto.add f (vector_of c))) configs;
  f

let assert_sane ~label front =
  let pts = Hiperbot.Pareto.points front in
  if Array.length pts = 0 then
    failwith (Printf.sprintf "BENCH moo: %s produced an empty front" label);
  Array.iter
    (fun p ->
      Array.iter
        (fun q ->
          if Hiperbot.Pareto.dominates p q then
            failwith (Printf.sprintf "BENCH moo: %s front is not mutually non-dominated" label))
        pts)
    pts

(* Median of an objective column — the shared reference coordinate. *)
let median values =
  let v = Array.copy values in
  Array.sort compare v;
  v.(Array.length v / 2)

let run ~reps () =
  Harness.section "Multi-objective tuning: Pareto hypervolume on Kripke time+energy";
  let space = Hpcsim.Kripke.energy_space in
  let pool = Param.Space.enumerate space in
  let n = Array.length pool in
  let budget =
    match budget_override with Some b -> b | None -> (n / 100) + 100
  in
  let per_ray = budget / n_rays in
  let total_budget = per_ray * n_rays in
  let vectors = Array.map vector_of pool in
  let times = Array.map (fun v -> v.(0)) vectors in
  let energies = Array.map (fun v -> v.(1)) vectors in
  let min_of = Array.fold_left Float.min infinity in
  let max_of = Array.fold_left Float.max neg_infinity in
  let t_min = min_of times and t_max = max_of times in
  let e_min = min_of energies and e_max = max_of energies in
  let reference = [| median times; median energies |] in
  let hv front = Hiperbot.Pareto.hypervolume ~reference front in
  (* The achievable total: the front of the whole table. *)
  let ideal_front = front_of_configs (Array.to_list pool) in
  let ideal_hv = hv ideal_front in
  (* Chebyshev weight rays, normalized by the objective ranges so a
     ray's balance point is meaningful in both units. *)
  let rays =
    List.init n_rays (fun i ->
        let lambda = (float_of_int i +. 1.) /. (float_of_int n_rays +. 1.) in
        [| lambda /. (t_max -. t_min); (1. -. lambda) /. (e_max -. e_min) |])
  in
  let moo_hv = Stats.Running.create () in
  let random_hv = Stats.Running.create () in
  let so_time_hv = Stats.Running.create () in
  let so_energy_hv = Stats.Running.create () in
  let so_time_visited_hv = Stats.Running.create () in
  let so_energy_visited_hv = Stats.Running.create () in
  let moo_front_size = Stats.Running.create () in
  for rep = 0 to reps - 1 do
    let seed = 100 + rep in
    (* moo: one scalarised campaign per weight ray, archives pooled. *)
    let moo_configs = ref [] in
    List.iteri
      (fun ray_idx weights ->
        let moo =
          { Hiperbot.Moo.scalarisation = Hiperbot.Moo.Chebyshev; weights; reference }
        in
        let t =
          Hiperbot.Moo.run ~moo
            ~rng:(Prng.Rng.create ((seed * n_rays) + ray_idx))
            ~space ~budget:per_ray
            ~objective:(fun c -> Hiperbot.Moo.Vector (vector_of c))
            ()
        in
        match Hiperbot.Moo.result t with
        | Error _ -> failwith "BENCH moo: scalarised campaign failed"
        | Ok r ->
            Array.iter
              (fun (c, _) -> moo_configs := c :: !moo_configs)
              r.Hiperbot.Campaign.history)
      rays;
    let moo_front = front_of_configs !moo_configs in
    assert_sane ~label:"moo" moo_front;
    Stats.Running.add moo_hv (hv moo_front);
    Stats.Running.add moo_front_size
      (float_of_int (Array.length (Hiperbot.Pareto.points moo_front)));
    (* random: the same total budget of uniform draws. *)
    let rng = Prng.Rng.create seed in
    let random_configs =
      List.init total_budget (fun _ -> Param.Space.random_config space rng)
    in
    let random_front = front_of_configs random_configs in
    assert_sane ~label:"random" random_front;
    Stats.Running.add random_hv (hv random_front);
    (* single-objective: the full budget on one axis each; scored on
       the best configuration returned, with the visited-history
       front as the informational column. *)
    let single objective =
      let r =
        Hiperbot.Tuner.run ~rng:(Prng.Rng.create seed) ~space ~objective ~budget:total_budget
          ()
      in
      let returned = front_of_configs [ r.Hiperbot.Tuner.best_config ] in
      let visited =
        front_of_configs (Array.to_list (Array.map fst r.Hiperbot.Tuner.history))
      in
      (returned, visited)
    in
    let so_time, so_time_visited = single (fun c -> Hpcsim.Kripke.exec_time_capped c) in
    let so_energy, so_energy_visited = single (fun c -> Hpcsim.Kripke.energy c) in
    assert_sane ~label:"so-time" so_time;
    assert_sane ~label:"so-energy" so_energy;
    Stats.Running.add so_time_hv (hv so_time);
    Stats.Running.add so_energy_hv (hv so_energy);
    Stats.Running.add so_time_visited_hv (hv so_time_visited);
    Stats.Running.add so_energy_visited_hv (hv so_energy_visited)
  done;
  let pct s = 100. *. Stats.Running.mean s /. ideal_hv in
  Printf.printf "space: %d configurations, budget %d (%d rays x %d), reps %d\n" n total_budget
    n_rays per_ray reps;
  Printf.printf "objective ranges: time [%.3g, %.3g] s, energy [%.3g, %.3g] J\n" t_min t_max
    e_min e_max;
  Printf.printf "reference (per-objective medians): (%.4g s, %.5g J)\n" reference.(0)
    reference.(1);
  Printf.printf "table-wide front: %d points, hypervolume %.6g (achievable total)\n"
    (Array.length (Hiperbot.Pareto.points ideal_front))
    ideal_hv;
  Printf.printf "%-10s %18s %10s\n" "method" "hv (mean+-std)" "% of ideal";
  let line name s =
    Printf.printf "%-10s %10.4g+-%-7.2g %9.1f%%\n" name (Stats.Running.mean s)
      (Stats.Running.stddev s) (pct s)
  in
  line "moo" moo_hv;
  line "random" random_hv;
  line "so-time" so_time_hv;
  line "so-nrg" so_energy_hv;
  Printf.printf "moo front size: %.1f points (mean)\n" (Stats.Running.mean moo_front_size);
  Printf.printf
    "single-objective visited-history fronts (informational): time %.4g, energy %.4g\n"
    (Stats.Running.mean so_time_visited_hv)
    (Stats.Running.mean so_energy_visited_hv);
  let buf = Buffer.create 1024 in
  Printf.bprintf buf "{\n";
  Printf.bprintf buf "  \"benchmark\": \"moo\",\n";
  Printf.bprintf buf "  \"dataset\": \"kripke_energy\",\n";
  Printf.bprintf buf "  \"objectives\": [\"exec_time_capped\", \"energy\"],\n";
  Printf.bprintf buf "  \"pool_size\": %d,\n" n;
  Printf.bprintf buf "  \"budget\": %d,\n" total_budget;
  Printf.bprintf buf "  \"rays\": %d,\n" n_rays;
  Printf.bprintf buf "  \"reps\": %d,\n" reps;
  Printf.bprintf buf "  \"reference\": [%.6g, %.6g],\n" reference.(0) reference.(1);
  Printf.bprintf buf "  \"ideal_hypervolume\": %.6g,\n" ideal_hv;
  Printf.bprintf buf "  \"hv_moo_mean\": %.6g,\n" (Stats.Running.mean moo_hv);
  Printf.bprintf buf "  \"hv_moo_std\": %.6g,\n" (Stats.Running.stddev moo_hv);
  Printf.bprintf buf "  \"hv_random_mean\": %.6g,\n" (Stats.Running.mean random_hv);
  Printf.bprintf buf "  \"hv_single_time_mean\": %.6g,\n" (Stats.Running.mean so_time_hv);
  Printf.bprintf buf "  \"hv_single_energy_mean\": %.6g,\n" (Stats.Running.mean so_energy_hv);
  Printf.bprintf buf "  \"hv_single_time_visited_mean\": %.6g,\n"
    (Stats.Running.mean so_time_visited_hv);
  Printf.bprintf buf "  \"hv_single_energy_visited_mean\": %.6g,\n"
    (Stats.Running.mean so_energy_visited_hv);
  Printf.bprintf buf "  \"moo_front_size_mean\": %.1f\n" (Stats.Running.mean moo_front_size);
  Printf.bprintf buf "}\n";
  let oc = open_out output_path in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Printf.printf "wrote %s\n%!" output_path;
  match budget_override with
  | Some _ -> print_endline "budget override set: skipping the hypervolume assertions"
  | None ->
      let moo = Stats.Running.mean moo_hv in
      let check_floor name other =
        if moo < other then
          failwith
            (Printf.sprintf "BENCH moo: moo hypervolume %.6g below %s %.6g" moo name other)
      in
      check_floor "random search" (Stats.Running.mean random_hv);
      check_floor "single-objective time" (Stats.Running.mean so_time_hv);
      check_floor "single-objective energy" (Stats.Running.mean so_energy_hv)
