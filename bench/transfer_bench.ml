(* Transfer learning on the paper's source->target pairs: Kripke 16->64
   nodes and HYPRE 16->64 nodes (DESIGN.md, SVII). For each pair the
   full source table serves as prior data and five tuners run on the
   target under the paper's budget protocol (size/100 + 100):

   - transfer:  HiPerBOt with the source prior under the default
                safeguard gate (the headline configuration)
   - ungated:   the same prior with the gate disabled — what negative
                transfer costs when nothing contains it
   - copula:    the Gaussian-copula few-shot baseline (source-only
                generative model, no target-side refits)
   - no-prior:  the same HiPerBOt loop without any prior
   - random:    uniform random search

   Reported metric is recall of the target's top-decile set (the
   fraction of the best-10% target rows the tuner evaluated), plus the
   best value found. Results go to stdout for humans and
   BENCH_transfer.json for tooling.

   Two invariants are asserted, not just reported. On the Kripke pair
   (source and target rankings agree strongly) the gated transfer
   recall must be at least the no-prior recall: the gate must not
   spend a helpful prior. On the HYPRE pair (the source ranking
   misleads the target) the gated recall must also be at least the
   no-prior recall: the gate must contain the harmful prior, whose
   ungated recall collapses to roughly half the no-prior level.
   HIPERBOT_TRANSFER_BUDGET overrides the budget for CI smoke runs;
   the assertions are skipped then, since a handful of evaluations is
   pure noise. *)

let output_path = "BENCH_transfer.json"
let top_decile = 0.10

let pairs =
  [ ("kripke", "kripke_src", "kripke_trgt"); ("hypre", "hypre_src", "hypre_trgt") ]

type row = {
  pair : string;
  budget : int;
  good_count : int;
  transfer_best : Stats.Running.t;
  transfer_recall : Stats.Running.t;
  ungated_best : Stats.Running.t;
  ungated_recall : Stats.Running.t;
  copula_best : Stats.Running.t;
  copula_recall : Stats.Running.t;
  noprior_best : Stats.Running.t;
  noprior_recall : Stats.Running.t;
  random_best : Stats.Running.t;
  random_recall : Stats.Running.t;
}

let table_of name = (Hpcsim.Registry.find name).Hpcsim.Registry.table ()

let rows_of table =
  let n = Dataset.Table.size table in
  Array.init n (fun i -> (Dataset.Table.config table i, Dataset.Table.objective table i))

let budget_override =
  match Sys.getenv_opt "HIPERBOT_TRANSFER_BUDGET" with
  | None -> None
  | Some s -> (
      match int_of_string_opt s with
      | Some n when n > 0 -> Some n
      | _ -> failwith "HIPERBOT_TRANSFER_BUDGET must be a positive integer")

let run ~reps () =
  Harness.section "Transfer learning: gated prior vs ungated vs baselines";
  let rows =
    List.map
      (fun (pair, src_name, trgt_name) ->
        let src = table_of src_name in
        let trgt = table_of trgt_name in
        let space = Dataset.Table.space trgt in
        let source = rows_of src in
        let objective = Dataset.Table.objective_fn trgt in
        (* Paper budget protocol: 1% of the target space plus the 100
           paper-protocol seed evaluations. *)
        let budget =
          match budget_override with
          | Some b -> b
          | None -> (Dataset.Table.size trgt / 100) + 100
        in
        let good = Metrics.Recall.percentile_good_set trgt top_decile in
        let row =
          {
            pair;
            budget;
            good_count = good.Metrics.Recall.count;
            transfer_best = Stats.Running.create ();
            transfer_recall = Stats.Running.create ();
            ungated_best = Stats.Running.create ();
            ungated_recall = Stats.Running.create ();
            copula_best = Stats.Running.create ();
            copula_recall = Stats.Running.create ();
            noprior_best = Stats.Running.create ();
            noprior_recall = Stats.Running.create ();
            random_best = Stats.Running.create ();
            random_recall = Stats.Running.create ();
          }
        in
        for rep = 0 to reps - 1 do
          let seed = 100 + rep in
          let add best recall (r : Hiperbot.Tuner.result) =
            Stats.Running.add best r.Hiperbot.Tuner.best_value;
            Stats.Running.add recall (Metrics.Recall.recall good r.Hiperbot.Tuner.history)
          in
          Hiperbot.Transfer.run ~rng:(Prng.Rng.create seed) ~space ~source ~objective ~budget ()
          |> add row.transfer_best row.transfer_recall;
          Hiperbot.Transfer.run ~gate:None ~rng:(Prng.Rng.create seed) ~space ~source ~objective
            ~budget ()
          |> add row.ungated_best row.ungated_recall;
          let copula =
            Baselines.Copula_transfer.run ~rng:(Prng.Rng.create seed) ~space ~source ~objective
              ~budget ()
          in
          Stats.Running.add row.copula_best copula.Baselines.Outcome.best_value;
          Stats.Running.add row.copula_recall
            (Metrics.Recall.recall good copula.Baselines.Outcome.history);
          Hiperbot.Tuner.run ~rng:(Prng.Rng.create seed) ~space ~objective ~budget ()
          |> add row.noprior_best row.noprior_recall;
          let random =
            Baselines.Random_search.run ~rng:(Prng.Rng.create seed) ~space ~objective ~budget ()
          in
          Stats.Running.add row.random_best random.Baselines.Outcome.best_value;
          Stats.Running.add row.random_recall
            (Metrics.Recall.recall good random.Baselines.Outcome.history)
        done;
        row)
      pairs
  in
  List.iter
    (fun row ->
      Printf.printf "\n%s: budget=%d, reps=%d, good set=%d configs (top %.0f%%)\n" row.pair
        row.budget reps row.good_count (100. *. top_decile);
      Printf.printf "%-10s %18s %20s\n" "method" "best (mean+-std)" "recall (mean+-std)";
      let line label best recall =
        Printf.printf "%-10s %10.4g+-%-7.2g %12.3f+-%-7.3f\n" label (Stats.Running.mean best)
          (Stats.Running.stddev best) (Stats.Running.mean recall) (Stats.Running.stddev recall)
      in
      line "transfer" row.transfer_best row.transfer_recall;
      line "ungated" row.ungated_best row.ungated_recall;
      line "copula" row.copula_best row.copula_recall;
      line "no-prior" row.noprior_best row.noprior_recall;
      line "random" row.random_best row.random_recall)
    rows;
  let buf = Buffer.create 1024 in
  Printf.bprintf buf "{\n";
  Printf.bprintf buf "  \"benchmark\": \"transfer\",\n";
  Printf.bprintf buf "  \"top_decile\": %.2f,\n" top_decile;
  Printf.bprintf buf "  \"reps\": %d,\n" reps;
  Printf.bprintf buf "  \"pairs\": [\n";
  List.iteri
    (fun i row ->
      let entry label best recall last =
        Printf.bprintf buf
          "      \"%s\": { \"best_mean\": %.6g, \"best_std\": %.6g, \"recall_mean\": %.4f, \
           \"recall_std\": %.4f }%s\n"
          label (Stats.Running.mean best) (Stats.Running.stddev best) (Stats.Running.mean recall)
          (Stats.Running.stddev recall)
          (if last then "" else ",")
      in
      Printf.bprintf buf "    { \"pair\": \"%s\", \"budget\": %d, \"good_set\": %d,\n" row.pair
        row.budget row.good_count;
      entry "transfer" row.transfer_best row.transfer_recall false;
      entry "ungated" row.ungated_best row.ungated_recall false;
      entry "copula" row.copula_best row.copula_recall false;
      entry "no_prior" row.noprior_best row.noprior_recall false;
      entry "random" row.random_best row.random_recall true;
      Printf.bprintf buf "    }%s\n" (if i = List.length rows - 1 then "" else ","))
    rows;
  Printf.bprintf buf "  ]\n";
  Printf.bprintf buf "}\n";
  let oc = open_out output_path in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Printf.printf "\nwrote %s\n%!" output_path;
  match budget_override with
  | Some _ -> print_endline "budget override set: skipping the gated>=no-prior assertions"
  | None ->
      List.iter
        (fun row ->
          let t = Stats.Running.mean row.transfer_recall in
          let n = Stats.Running.mean row.noprior_recall in
          if t < n then
            failwith
              (Printf.sprintf "BENCH transfer: %s gated recall %.3f below no-prior %.3f" row.pair
                 t n))
        rows
