examples/transfer_hypre.mli:
