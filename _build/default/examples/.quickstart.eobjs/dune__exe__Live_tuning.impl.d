examples/live_tuning.ml: Hiperbot Kernels Parallel Param Printf Prng
