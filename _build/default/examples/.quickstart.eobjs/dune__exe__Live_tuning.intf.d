examples/live_tuning.mli:
