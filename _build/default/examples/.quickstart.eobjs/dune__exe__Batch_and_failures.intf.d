examples/batch_and_failures.mli:
