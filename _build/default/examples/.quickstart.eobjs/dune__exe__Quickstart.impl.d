examples/quickstart.ml: Array Hiperbot Param Printf Prng
