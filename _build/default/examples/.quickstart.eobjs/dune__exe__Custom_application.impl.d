examples/custom_application.ml: Array Hiperbot List Param Printf Prng
