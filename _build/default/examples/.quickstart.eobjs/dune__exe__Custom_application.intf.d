examples/custom_application.mli:
