examples/importance_analysis.ml: Array Dataset Hiperbot Hpcsim List Printf Prng Stdlib
