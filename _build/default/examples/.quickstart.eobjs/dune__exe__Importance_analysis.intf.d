examples/importance_analysis.mli:
