examples/transfer_hypre.ml: Array Dataset Hiperbot Hpcsim Metrics Printf Prng
