examples/tune_kripke.ml: Baselines Dataset Hiperbot Hpcsim List Metrics Param Printf Prng
