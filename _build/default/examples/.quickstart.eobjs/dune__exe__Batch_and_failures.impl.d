examples/batch_and_failures.ml: Array Hiperbot Param Printf Prng
