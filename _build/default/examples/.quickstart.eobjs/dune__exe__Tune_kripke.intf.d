examples/tune_kripke.mli:
