examples/quickstart.mli:
