(* Transfer learning (the paper's SVII-B case study): use the full
   16-node HYPRE study as a prior to tune the 64-node problem with a
   small evaluation budget.

     dune exec examples/transfer_hypre.exe *)

let () =
  let src = (Hpcsim.Registry.find "hypre_src").Hpcsim.Registry.table () in
  let trgt = (Hpcsim.Registry.find "hypre_trgt").Hpcsim.Registry.table () in
  let space = Dataset.Table.space trgt in
  let objective = Dataset.Table.objective_fn trgt in
  let source =
    Array.init (Dataset.Table.size src) (fun i ->
        (Dataset.Table.config src i, Dataset.Table.objective src i))
  in
  (* The paper's protocol: 1% of the target space plus 100 samples. *)
  let budget = (Dataset.Table.size trgt / 100) + 100 in
  Printf.printf "source: %d rows at 16 nodes; target: %d rows at 64 nodes; budget %d\n\n"
    (Dataset.Table.size src) (Dataset.Table.size trgt) budget;

  let with_prior =
    Hiperbot.Transfer.run ~rng:(Prng.Rng.create 3) ~space ~source ~objective ~budget ()
  in
  let without_prior =
    Hiperbot.Tuner.run ~rng:(Prng.Rng.create 3) ~space ~objective ~budget ()
  in
  let good = Metrics.Recall.tolerance_good_set trgt 0.10 in
  Printf.printf "target exhaustive best: %.4g s\n" (Dataset.Table.best_value trgt);
  Printf.printf "with source prior:    best %.4g s, 10%%-tolerance recall %.2f\n"
    with_prior.Hiperbot.Tuner.best_value
    (Metrics.Recall.recall good with_prior.Hiperbot.Tuner.history);
  Printf.printf "without prior:        best %.4g s, 10%%-tolerance recall %.2f\n"
    without_prior.Hiperbot.Tuner.best_value
    (Metrics.Recall.recall good without_prior.Hiperbot.Tuner.history);
  Printf.printf "(%d configurations are within 10%% of the target best)\n"
    good.Metrics.Recall.count
