(* Tune the Kripke particle-transport proxy (the paper's SV-A case
   study) and compare HiPerBOt against random sampling on the two
   paper metrics: best configuration found and Recall.

     dune exec examples/tune_kripke.exe *)

let budget = 96 (* the paper: HiPerBOt finds Kripke's best with 96 samples *)

let () =
  let table = (Hpcsim.Registry.find "kripke").Hpcsim.Registry.table () in
  let space = Dataset.Table.space table in
  let objective = Dataset.Table.objective_fn table in
  let exhaustive_config, exhaustive_best = Dataset.Table.best table in
  Printf.printf "Kripke: %d configurations; exhaustive best %.2f s at\n  %s\n\n"
    (Dataset.Table.size table) exhaustive_best
    (Param.Space.to_string space exhaustive_config);

  let result =
    Hiperbot.Tuner.run ~rng:(Prng.Rng.create 7) ~space ~objective ~budget ()
  in
  Printf.printf "HiPerBOt after %d evaluations: %.2f s (%.1f%% above exhaustive best)\n" budget
    result.Hiperbot.Tuner.best_value
    (100. *. ((result.Hiperbot.Tuner.best_value /. exhaustive_best) -. 1.));
  Printf.printf "  %s\n" (Param.Space.to_string space result.Hiperbot.Tuner.best_config);

  let random =
    Baselines.Random_search.run ~rng:(Prng.Rng.create 7) ~space ~objective ~budget ()
  in
  Printf.printf "Random after %d evaluations:  %.2f s\n\n" budget
    random.Baselines.Outcome.best_value;

  (* Recall: how many of the top-5% configurations each method's
     evaluated set contains (paper eq. 11). *)
  let good = Metrics.Recall.percentile_good_set table 0.05 in
  Printf.printf "top-5%% recall (of %d good configurations):\n" good.Metrics.Recall.count;
  Printf.printf "  HiPerBOt %.2f   Random %.2f\n"
    (Metrics.Recall.recall good result.Hiperbot.Tuner.history)
    (Metrics.Recall.recall good random.Baselines.Outcome.history);

  (* Best-so-far trajectory at a few checkpoints. *)
  Printf.printf "\nbest-so-far trajectory (HiPerBOt):\n";
  List.iter
    (fun n ->
      Printf.printf "  %3d samples: %.2f s\n" n
        (Metrics.Recall.best_prefix result.Hiperbot.Tuner.history n))
    [ 20; 40; 60; 80; budget ]
