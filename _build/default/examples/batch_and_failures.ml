(* Two extensions beyond the paper, together:

   - batch selection: one surrogate refit proposes several
     configurations, as you would when several cluster allocations can
     run in parallel;
   - resilient tuning: some configurations crash (here: thread counts
     the application rejects), and the failures steer the surrogate
     away instead of wasting the run.

     dune exec examples/batch_and_failures.exe *)

let space =
  Param.Space.make
    [
      Param.Spec.categorical "layout" [ "aos"; "soa"; "tiled" ];
      Param.Spec.ordinal_ints "threads" [ 1; 2; 4; 8; 16; 32 ];
      Param.Spec.ordinal_ints "chunk" [ 64; 256; 1024; 4096 ];
    ]

(* The pretend application: crashes when oversubscribed (threads = 32)
   with the tiled layout (say, a known bug), otherwise returns a
   runtime with a clear optimum at soa / 16 threads / 1024 chunk. *)
let run_application config =
  let layout = Param.Value.to_index config.(0) in
  let threads = Param.Spec.level (Param.Space.spec space 1) (Param.Value.to_index config.(1)) in
  let chunk = Param.Spec.level (Param.Space.spec space 2) (Param.Value.to_index config.(2)) in
  if layout = 2 && threads > 16. then None
  else begin
    let layout_factor = [| 1.25; 1.0; 1.1 |].(layout) in
    let parallel = (64. /. (threads ** 0.8)) +. (0.4 *. threads) in
    let chunk_penalty = 1. +. (0.03 *. abs_float (log (chunk /. 1024.))) in
    Some (parallel *. layout_factor *. chunk_penalty)
  end

let () =
  let options =
    {
      Hiperbot.Tuner.default_options with
      n_init = 10;
      batch_size = 4; (* four runs per surrogate refit *)
      early_stop = Some 20; (* stop when 20 evaluations stop improving *)
    }
  in
  let result =
    Hiperbot.Tuner.run_resilient ~options
      ~on_failure:(fun i c ->
        Printf.printf "%3d  CRASH       %s\n" i (Param.Space.to_string space c))
      ~on_evaluation:(fun i c y ->
        if i mod 8 = 0 then Printf.printf "%3d  %8.3f    %s\n" i y (Param.Space.to_string space c))
      ~rng:(Prng.Rng.create 11) ~space ~objective:run_application ~budget:60 ()
  in
  Printf.printf "\nbest %.3f at %s\n" result.Hiperbot.Tuner.best_value
    (Param.Space.to_string space result.Hiperbot.Tuner.best_config);
  Printf.printf "%d successful runs, %d crashes, early stop: %b\n"
    (Array.length result.Hiperbot.Tuner.history)
    (Array.length result.Hiperbot.Tuner.failures)
    result.Hiperbot.Tuner.stopped_early
