(* Parameter-importance analysis (the paper's SVI / Table I): rank
   parameters by the Jensen-Shannon divergence between their good and
   bad densities, and show that a 10% sample recovers most of the
   exhaustive ranking.

     dune exec examples/importance_analysis.exe *)

let () =
  List.iter
    (fun name ->
      let table = (Hpcsim.Registry.find name).Hpcsim.Registry.table () in
      let space = Dataset.Table.space table in
      let all =
        Array.init (Dataset.Table.size table) (fun i ->
            (Dataset.Table.config table i, Dataset.Table.objective table i))
      in
      let exhaustive = Hiperbot.Importance.of_observations space all in
      let rng = Prng.Rng.create 17 in
      let n = Stdlib.max 20 (Array.length all / 10) in
      let idx = Prng.Rng.sample_without_replacement rng n (Array.length all) in
      let sampled =
        Hiperbot.Importance.of_observations space (Array.map (fun i -> all.(i)) idx)
      in
      Printf.printf "== %s ==\n" name;
      Printf.printf "  10%% sample (%4d rows): %s\n" n (Hiperbot.Importance.to_string sampled);
      Printf.printf "  all rows   (%4d rows): %s\n" (Array.length all)
        (Hiperbot.Importance.to_string exhaustive);
      Printf.printf "  Spearman rank agreement: %.2f\n\n"
        (Hiperbot.Importance.spearman sampled exhaustive))
    [ "kripke"; "hypre"; "lulesh"; "openatom" ]
