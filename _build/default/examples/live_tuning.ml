(* Live tuning: HiPerBOt optimizing an actual execution on this
   machine, not a recorded dataset. The objective times a blocked
   matrix multiply (lib/kernels) under each configuration of block
   sizes, loop order, and loop schedule, so the measurements are
   machine-dependent and genuinely noisy — the regime the paper
   targets.

     dune exec examples/live_tuning.exe *)

let budget = 60

let () =
  Parallel.Pool.with_pool (fun pool ->
      Printf.printf "pool: %d domain(s) on this machine\n" (Parallel.Pool.size pool);
      let space = Kernels.Live.matmul_space in
      let objective = Kernels.Live.matmul_objective ~pool ~n:96 () in
      Printf.printf "tuning %s configurations of a 96x96 blocked matmul, budget %d\n\n"
        (match Param.Space.cardinality space with Some n -> string_of_int n | None -> "?")
        budget;
      let best = ref infinity in
      let on_evaluation i config t =
        if t < !best then begin
          best := t;
          Printf.printf "%3d  %8.2f ms  %s\n%!" i (1000. *. t) (Param.Space.to_string space config)
        end
      in
      let result =
        Hiperbot.Tuner.run ~on_evaluation ~rng:(Prng.Rng.create 1) ~space ~objective ~budget ()
      in
      Printf.printf "\nbest: %.2f ms with %s\n" (1000. *. result.Hiperbot.Tuner.best_value)
        (Param.Space.to_string space result.Hiperbot.Tuner.best_config);
      match result.Hiperbot.Tuner.final_surrogate with
      | None -> ()
      | Some s ->
          Printf.printf "importance: %s\n"
            (Hiperbot.Importance.to_string (Hiperbot.Importance.of_surrogate s)))
