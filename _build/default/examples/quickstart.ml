(* Quickstart: tune a black-box function over a small mixed
   discrete space with HiPerBOt.

     dune exec examples/quickstart.exe

   The "application" is a stand-in for anything expensive: a compiled
   binary, an MPI job, a simulation. HiPerBOt only needs a function
   from configuration to a smaller-is-better score. *)

let () =
  (* 1. Declare the tunable parameters. *)
  let space =
    Param.Space.make
      [
        Param.Spec.categorical "compiler" [ "gcc"; "clang"; "icx" ];
        Param.Spec.ordinal_ints "threads" [ 1; 2; 4; 8; 16 ];
        Param.Spec.ordinal_ints "tile" [ 16; 32; 64; 128 ];
      ]
  in
  (* 2. The expensive objective (here: a synthetic runtime model). *)
  let runtime config =
    let compiler = Param.Value.to_index config.(0) in
    let threads = Param.Spec.level (Param.Space.spec space 1) (Param.Value.to_index config.(1)) in
    let tile = Param.Spec.level (Param.Space.spec space 2) (Param.Value.to_index config.(2)) in
    let compiler_factor = [| 1.0; 0.95; 0.90 |].(compiler) in
    let parallel = 100. /. (threads ** 0.85) in
    let cache_penalty = 1. +. (0.002 *. ((tile -. 64.) ** 2.) /. 64.) in
    parallel *. compiler_factor *. cache_penalty
  in
  (* 3. Run the tuner: 20 random samples, then 20 guided ones. *)
  let rng = Prng.Rng.create 2024 in
  let result = Hiperbot.Tuner.run ~rng ~space ~objective:runtime ~budget:40 () in
  Printf.printf "best runtime %.2f with %s\n" result.Hiperbot.Tuner.best_value
    (Param.Space.to_string space result.Hiperbot.Tuner.best_config);
  (* 4. Which parameters mattered? *)
  match result.Hiperbot.Tuner.final_surrogate with
  | None -> ()
  | Some surrogate ->
      Array.iter
        (fun (name, score) -> Printf.printf "importance %-10s %.3f\n" name score)
        (Hiperbot.Importance.of_surrogate surrogate)
