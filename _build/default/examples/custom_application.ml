(* Tuning your own application, including a continuous parameter.

   This example plays the role of a user bringing an external code to
   the framework: the objective shells out to "run the application" (a
   stand-in stencil-kernel cost model here), the space mixes
   categorical, ordinal, and continuous parameters, and because the
   space is not finite the Proposal selection strategy samples
   candidates from the good density instead of ranking an enumeration
   (paper SIII-D).

     dune exec examples/custom_application.exe *)

let space =
  Param.Space.make
    [
      Param.Spec.categorical "schedule" [ "static"; "dynamic"; "guided" ];
      Param.Spec.ordinal_ints "block" [ 8; 16; 32; 64; 128 ];
      (* A continuous knob: software prefetch distance in cache lines. *)
      Param.Spec.continuous "prefetch" ~lo:0. ~hi:16.;
    ]

(* Stand-in for launching the real application and reading its
   runtime: a stencil kernel whose best prefetch distance is ~6 lines,
   with block-size cache effects and schedule overhead. *)
let run_application config =
  let schedule = Param.Value.to_index config.(0) in
  let block = Param.Spec.level (Param.Space.spec space 1) (Param.Value.to_index config.(1)) in
  let prefetch = Param.Value.to_float_raw config.(2) in
  let schedule_overhead = [| 0.; 0.06; 0.02 |].(schedule) in
  let block_penalty = 0.004 *. ((log (block /. 32.) /. log 2.) ** 2.) in
  let prefetch_penalty = 0.003 *. ((prefetch -. 6.) ** 2.) in
  1.0 +. schedule_overhead +. block_penalty +. prefetch_penalty

let () =
  let options =
    {
      Hiperbot.Tuner.default_options with
      strategy = Hiperbot.Strategy.Proposal { n_candidates = 128 };
    }
  in
  let trace = ref [] in
  let on_evaluation i config y = trace := (i, config, y) :: !trace in
  let result =
    Hiperbot.Tuner.run ~options ~on_evaluation ~rng:(Prng.Rng.create 5) ~space
      ~objective:run_application ~budget:80 ()
  in
  Printf.printf "best %.4f with %s\n" result.Hiperbot.Tuner.best_value
    (Param.Space.to_string space result.Hiperbot.Tuner.best_config);
  (* The guided samples should concentrate prefetch near 6. *)
  let guided = List.filter (fun (i, _, _) -> i >= 20) !trace in
  let prefetches = List.map (fun (_, c, _) -> Param.Value.to_float_raw c.(2)) guided in
  let n = float_of_int (List.length prefetches) in
  Printf.printf "mean prefetch over %d guided samples: %.2f (optimum 6.0)\n"
    (List.length prefetches)
    (List.fold_left ( +. ) 0. prefetches /. n);
  match result.Hiperbot.Tuner.final_surrogate with
  | None -> ()
  | Some s ->
      Printf.printf "importance: %s\n"
        (Hiperbot.Importance.to_string (Hiperbot.Importance.of_surrogate s))
