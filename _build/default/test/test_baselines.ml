(* Tests for the baseline tuners. *)

let check = Alcotest.check
let feq = Alcotest.float 1e-9

let space =
  Param.Space.make
    [ Param.Spec.categorical "c" [ "a"; "b"; "x" ]; Param.Spec.ordinal_ints "o" [ 1; 2; 3; 4 ] ]

let objective config =
  let c = Param.Value.to_index config.(0) in
  let o = Param.Value.to_index config.(1) in
  1. +. float_of_int (((c * 4) + o + 5) mod 12)

(* ---- Outcome ---- *)

let test_outcome_of_history () =
  let mk i = [| Param.Value.Categorical (i mod 3); Param.Value.Ordinal (i mod 4) |] in
  let history = [| (mk 0, 5.); (mk 1, 3.); (mk 2, 4.) |] in
  let o = Baselines.Outcome.of_history history in
  check feq "best value" 3. o.Baselines.Outcome.best_value;
  check (Alcotest.array feq) "trajectory" [| 5.; 3.; 3. |] o.Baselines.Outcome.trajectory;
  check Alcotest.bool "best config" true (Param.Config.equal o.Baselines.Outcome.best_config (mk 1))

let test_outcome_empty () =
  Alcotest.check_raises "empty history" (Invalid_argument "Outcome.of_history: empty history")
    (fun () -> ignore (Baselines.Outcome.of_history [||]))

(* ---- Random search ---- *)

let test_random_distinct () =
  let o = Baselines.Random_search.run ~rng:(Prng.Rng.create 1) ~space ~objective ~budget:10 () in
  check Alcotest.int "exactly budget evaluations" 10 (Array.length o.Baselines.Outcome.history);
  let seen = Param.Config.Table.create 10 in
  Array.iter
    (fun (c, _) ->
      if Param.Config.Table.mem seen c then Alcotest.fail "duplicate draw";
      Param.Config.Table.replace seen c ())
    o.Baselines.Outcome.history

let test_random_covers_space () =
  let o = Baselines.Random_search.run ~rng:(Prng.Rng.create 2) ~space ~objective ~budget:999 () in
  check Alcotest.int "capped at space size" 12 (Array.length o.Baselines.Outcome.history);
  check feq "finds the optimum when exhausting" 1. o.Baselines.Outcome.best_value

(* ---- Exhaustive ---- *)

let test_exhaustive () =
  let table = Dataset.Table.create ~name:"toy" ~space ~objective in
  let config, value = Baselines.Exhaustive.best table in
  check feq "best value" 1. value;
  check feq "objective agrees" 1. (objective config);
  let o = Baselines.Exhaustive.run table in
  check Alcotest.int "full history" 12 (Array.length o.Baselines.Outcome.history);
  check feq "outcome best" 1. o.Baselines.Outcome.best_value

(* ---- GEIST ---- *)

let test_geist_budget_and_validity () =
  let o = Baselines.Geist.run ~rng:(Prng.Rng.create 3) ~space ~objective ~budget:10 () in
  check Alcotest.int "budget respected" 10 (Array.length o.Baselines.Outcome.history);
  Array.iter
    (fun (c, _) -> check Alcotest.bool "valid config" true (Param.Space.validate space c))
    o.Baselines.Outcome.history

let test_geist_no_duplicates () =
  let o = Baselines.Geist.run ~rng:(Prng.Rng.create 4) ~space ~objective ~budget:12 () in
  let seen = Param.Config.Table.create 12 in
  Array.iter
    (fun (c, _) ->
      if Param.Config.Table.mem seen c then Alcotest.fail "duplicate evaluation";
      Param.Config.Table.replace seen c ())
    o.Baselines.Outcome.history;
  check feq "exhausting finds optimum" 1. o.Baselines.Outcome.best_value

let test_geist_shared_graph () =
  let graph = Graphlib.Lattice.build space in
  let a = Baselines.Geist.run ~graph ~rng:(Prng.Rng.create 5) ~space ~objective ~budget:8 () in
  let b = Baselines.Geist.run ~graph ~rng:(Prng.Rng.create 5) ~space ~objective ~budget:8 () in
  check feq "shared graph deterministic" a.Baselines.Outcome.best_value b.Baselines.Outcome.best_value

let test_geist_rejects_wrong_graph () =
  let other = Param.Space.make [ Param.Spec.ordinal_ints "z" [ 1; 2 ] ] in
  let graph = Graphlib.Lattice.build other in
  Alcotest.check_raises "graph size mismatch"
    (Invalid_argument "Geist.run: graph node count does not match the space") (fun () ->
      ignore (Baselines.Geist.run ~graph ~rng:(Prng.Rng.create 1) ~space ~objective ~budget:5 ()))

(* ---- PerfNet ---- *)

let bigger_space =
  Param.Space.make
    [
      Param.Spec.categorical "c" [ "a"; "b"; "x" ];
      Param.Spec.ordinal_ints "o" [ 1; 2; 3; 4 ];
      Param.Spec.ordinal_ints "p" [ 0; 1; 2; 3; 4 ];
    ]

let bigger_objective config =
  let c = Param.Value.to_index config.(0) in
  let o = Param.Value.to_index config.(1) in
  let p = Param.Value.to_index config.(2) in
  1. +. float_of_int c +. Float.abs (float_of_int o -. 2.) +. (0.5 *. Float.abs (float_of_int p -. 1.))

let test_perfnet_runs_and_learns () =
  let source =
    Array.map (fun c -> (c, bigger_objective c)) (Param.Space.enumerate bigger_space)
  in
  let o =
    Baselines.Perfnet.run ~rng:(Prng.Rng.create 6) ~space:bigger_space ~source
      ~objective:bigger_objective ~budget:20 ()
  in
  check Alcotest.int "budget respected" 20 (Array.length o.Baselines.Outcome.history);
  (* With a perfect source model, PerfNet should find a near-optimal
     config (best value 1.0). *)
  check Alcotest.bool "near-optimal found" true (o.Baselines.Outcome.best_value <= 1.5)

let test_perfnet_validation () =
  Alcotest.check_raises "empty source" (Invalid_argument "Perfnet.run: empty source data")
    (fun () ->
      ignore
        (Baselines.Perfnet.run ~rng:(Prng.Rng.create 1) ~space ~source:[||] ~objective ~budget:5 ()))

(* ---- GP tuner ---- *)

let test_gp_tuner_runs () =
  let o = Baselines.Gp_tuner.run ~rng:(Prng.Rng.create 7) ~space:bigger_space ~objective:bigger_objective ~budget:30 () in
  check Alcotest.int "budget respected" 30 (Array.length o.Baselines.Outcome.history);
  let seen = Param.Config.Table.create 30 in
  Array.iter
    (fun (c, _) ->
      if Param.Config.Table.mem seen c then Alcotest.fail "duplicate evaluation";
      Param.Config.Table.replace seen c ())
    o.Baselines.Outcome.history;
  check Alcotest.bool "beats the worst" true (o.Baselines.Outcome.best_value <= 1.5)

let suite =
  let tc = Alcotest.test_case in
  ( "baselines",
    [
      tc "outcome of_history" `Quick test_outcome_of_history;
      tc "outcome empty" `Quick test_outcome_empty;
      tc "random: distinct draws" `Quick test_random_distinct;
      tc "random: covers space" `Quick test_random_covers_space;
      tc "exhaustive" `Quick test_exhaustive;
      tc "geist: budget and validity" `Quick test_geist_budget_and_validity;
      tc "geist: no duplicates" `Quick test_geist_no_duplicates;
      tc "geist: shared graph" `Quick test_geist_shared_graph;
      tc "geist: rejects wrong graph" `Quick test_geist_rejects_wrong_graph;
      tc "perfnet: runs and learns" `Quick test_perfnet_runs_and_learns;
      tc "perfnet: validation" `Quick test_perfnet_validation;
      tc "gp tuner: runs" `Quick test_gp_tuner_runs;
    ] )
