(* Tests for the discrete-event simulation substrate: heap, engine,
   task-graph scheduler, and the sweep wavefront model. *)

let check = Alcotest.check
let feq = Alcotest.float 1e-9

(* ---- Heap ---- *)

let test_heap_ordering () =
  let h = Simulate.Heap.create () in
  List.iter (fun k -> Simulate.Heap.push h k (int_of_float k)) [ 5.; 1.; 4.; 1.5; 3.; 2. ];
  check Alcotest.int "length" 6 (Simulate.Heap.length h);
  let rec drain acc =
    match Simulate.Heap.pop h with None -> List.rev acc | Some (k, _) -> drain (k :: acc)
  in
  check (Alcotest.list feq) "sorted drain" [ 1.; 1.5; 2.; 3.; 4.; 5. ] (drain []);
  check Alcotest.bool "empty after drain" true (Simulate.Heap.is_empty h)

let test_heap_peek_and_clear () =
  let h = Simulate.Heap.create () in
  check Alcotest.(option (pair (float 0.) int)) "peek empty" None (Simulate.Heap.peek h);
  Simulate.Heap.push h 2. 20;
  Simulate.Heap.push h 1. 10;
  check Alcotest.(option (pair (float 0.) int)) "peek min" (Some (1., 10)) (Simulate.Heap.peek h);
  check Alcotest.int "peek does not remove" 2 (Simulate.Heap.length h);
  Simulate.Heap.clear h;
  check Alcotest.bool "cleared" true (Simulate.Heap.is_empty h)

let test_heap_random_property () =
  let rng = Prng.Rng.create 3 in
  for _ = 1 to 20 do
    let n = 1 + Prng.Rng.int rng 200 in
    let keys = Array.init n (fun _ -> Prng.Rng.float rng) in
    let h = Simulate.Heap.create () in
    Array.iter (fun k -> Simulate.Heap.push h k ()) keys;
    let sorted = Array.copy keys in
    Array.sort compare sorted;
    Array.iter
      (fun expected ->
        match Simulate.Heap.pop h with
        | Some (k, ()) -> if k <> expected then Alcotest.failf "pop %g, expected %g" k expected
        | None -> Alcotest.fail "heap exhausted early")
      sorted
  done

(* ---- Engine ---- *)

let test_engine_order_and_time () =
  let e = Simulate.Engine.create () in
  let log = ref [] in
  Simulate.Engine.schedule e ~at:3. (fun e -> log := ("c", Simulate.Engine.now e) :: !log);
  Simulate.Engine.schedule e ~at:1. (fun e -> log := ("a", Simulate.Engine.now e) :: !log);
  Simulate.Engine.schedule e ~at:2. (fun e -> log := ("b", Simulate.Engine.now e) :: !log);
  let final = Simulate.Engine.run e in
  check feq "final time" 3. final;
  check Alcotest.(list (pair string (float 0.))) "events in time order"
    [ ("a", 1.); ("b", 2.); ("c", 3.) ]
    (List.rev !log);
  check Alcotest.int "events processed" 3 (Simulate.Engine.events_processed e)

let test_engine_cascading () =
  let e = Simulate.Engine.create () in
  let hits = ref 0 in
  let rec chain e =
    incr hits;
    if !hits < 5 then Simulate.Engine.schedule_after e ~delay:2. chain
  in
  Simulate.Engine.schedule e ~at:1. chain;
  let final = Simulate.Engine.run e in
  check Alcotest.int "cascade length" 5 !hits;
  check feq "cascade end time" 9. final

let test_engine_rejects_past () =
  let e = Simulate.Engine.create () in
  Simulate.Engine.schedule e ~at:5. (fun e ->
      Alcotest.check_raises "past event" (Invalid_argument "Engine.schedule: event in the past")
        (fun () -> Simulate.Engine.schedule e ~at:1. (fun _ -> ())));
  ignore (Simulate.Engine.run e)

(* ---- Taskgraph ---- *)

let task duration resource deps = { Simulate.Taskgraph.duration; resource; deps = Array.of_list deps }

let test_taskgraph_chain () =
  let r = Simulate.Taskgraph.simulate ~n_resources:1 [| task 1. 0 []; task 2. 0 [ (0, 0.) ]; task 3. 0 [ (1, 0.) ] |] in
  check feq "chain makespan" 6. r.Simulate.Taskgraph.makespan;
  check (Alcotest.array feq) "chain completions" [| 1.; 3.; 6. |] r.Simulate.Taskgraph.completion

let test_taskgraph_resource_serialization () =
  (* Two independent tasks on one resource must serialize; on two
     resources they run concurrently. *)
  let tasks = [| task 2. 0 []; task 2. 0 [] |] in
  let serial = Simulate.Taskgraph.simulate ~n_resources:1 tasks in
  check feq "serialized" 4. serial.Simulate.Taskgraph.makespan;
  let tasks2 = [| task 2. 0 []; task 2. 1 [] |] in
  let parallel = Simulate.Taskgraph.simulate ~n_resources:2 tasks2 in
  check feq "parallel" 2. parallel.Simulate.Taskgraph.makespan

let test_taskgraph_cross_resource_latency () =
  (* Latency applies across resources, not within one. *)
  let cross = Simulate.Taskgraph.simulate ~n_resources:2 [| task 1. 0 []; task 1. 1 [ (0, 5.) ] |] in
  check feq "cross-resource pays latency" 7. cross.Simulate.Taskgraph.makespan;
  let local = Simulate.Taskgraph.simulate ~n_resources:1 [| task 1. 0 []; task 1. 0 [ (0, 5.) ] |] in
  check feq "same-resource skips latency" 2. local.Simulate.Taskgraph.makespan

let test_taskgraph_max_over_edges () =
  (* The start time is the max over incoming edges, not the last
     edge to fire. *)
  let r =
    Simulate.Taskgraph.simulate ~n_resources:3
      [| task 1. 0 []; task 3. 1 []; task 1. 2 [ (0, 10.); (1, 0.) ] |]
  in
  (* dep 0 completes at 1 with latency 10 -> 11; dep 1 completes at 3
     with latency 0 -> 3; start at 11, finish at 12. *)
  check feq "max over edges" 12. r.Simulate.Taskgraph.makespan

let test_taskgraph_validation () =
  Alcotest.check_raises "forward dep"
    (Invalid_argument "Taskgraph.simulate: dependencies must point to earlier tasks") (fun () ->
      ignore (Simulate.Taskgraph.simulate ~n_resources:1 [| task 1. 0 [ (0, 0.) ] |]));
  Alcotest.check_raises "bad resource" (Invalid_argument "Taskgraph.simulate: resource out of range")
    (fun () -> ignore (Simulate.Taskgraph.simulate ~n_resources:1 [| task 1. 3 [] |]))

(* ---- Sweep ---- *)

let test_grid_of_ranks () =
  check Alcotest.(pair int int) "64 -> 8x8" (8, 8) (Simulate.Sweep.grid_of_ranks 64);
  check Alcotest.(pair int int) "12 -> 3x4" (3, 4) (Simulate.Sweep.grid_of_ranks 12);
  check Alcotest.(pair int int) "7 -> 1x7" (1, 7) (Simulate.Sweep.grid_of_ranks 7);
  check Alcotest.(pair int int) "1 -> 1x1" (1, 1) (Simulate.Sweep.grid_of_ranks 1)

let test_sweep_single_rank () =
  (* One rank: pure serial work, no fill, no messages. *)
  check feq "serial makespan" 8. (Simulate.Sweep.makespan ~px:1 ~py:1 ~work_units:4 ~t_chunk:2. ~t_msg:9.)

let test_sweep_known_small () =
  (* 2x1 grid, 1 unit: fill = one chunk + one message + one chunk. *)
  check feq "2-rank fill" (1. +. 0.5 +. 1.)
    (Simulate.Sweep.makespan ~px:2 ~py:1 ~work_units:1 ~t_chunk:1. ~t_msg:0.5);
  (* diameter fill with zero message cost: (px+py-2+U) chunks. *)
  check feq "diagonal fill" 5.
    (Simulate.Sweep.makespan ~px:2 ~py:2 ~work_units:3 ~t_chunk:1. ~t_msg:0.)

let test_sweep_matches_taskgraph () =
  List.iter
    (fun (px, py, u, tc, tm) ->
      let dp = Simulate.Sweep.makespan ~px ~py ~work_units:u ~t_chunk:tc ~t_msg:tm in
      let tg = Simulate.Sweep.makespan_taskgraph ~px ~py ~work_units:u ~t_chunk:tc ~t_msg:tm in
      check feq
        (Printf.sprintf "DP = taskgraph (%d,%d,%d)" px py u)
        dp tg.Simulate.Taskgraph.makespan)
    [ (1, 1, 5, 1., 0.3); (2, 3, 4, 0.7, 0.1); (4, 4, 8, 0.25, 0.05); (3, 5, 2, 1.2, 0.9); (8, 8, 6, 0.1, 0.02) ]

let test_sweep_pipeline_efficiency_properties () =
  let eff u = Simulate.Sweep.pipeline_efficiency ~px:4 ~py:4 ~work_units:u ~t_chunk:1. ~t_msg:0.1 in
  check Alcotest.bool "efficiency in (0,1]" true (eff 4 > 0. && eff 4 <= 1.);
  check Alcotest.bool "deeper pipeline is more efficient" true (eff 32 > eff 4);
  let eff_small_grid =
    Simulate.Sweep.pipeline_efficiency ~px:2 ~py:2 ~work_units:8 ~t_chunk:1. ~t_msg:0.1
  in
  let eff_large_grid =
    Simulate.Sweep.pipeline_efficiency ~px:8 ~py:8 ~work_units:8 ~t_chunk:1. ~t_msg:0.1
  in
  check Alcotest.bool "bigger grid fills longer" true (eff_small_grid > eff_large_grid)

let test_sweep_monotone_in_messages () =
  let m tm = Simulate.Sweep.makespan ~px:4 ~py:4 ~work_units:8 ~t_chunk:1. ~t_msg:tm in
  check Alcotest.bool "messages only hurt" true (m 0.5 > m 0.)

let suite =
  let tc = Alcotest.test_case in
  ( "simulate",
    [
      tc "heap ordering" `Quick test_heap_ordering;
      tc "heap peek/clear" `Quick test_heap_peek_and_clear;
      tc "heap random property" `Quick test_heap_random_property;
      tc "engine order and time" `Quick test_engine_order_and_time;
      tc "engine cascading" `Quick test_engine_cascading;
      tc "engine rejects the past" `Quick test_engine_rejects_past;
      tc "taskgraph chain" `Quick test_taskgraph_chain;
      tc "taskgraph resource serialization" `Quick test_taskgraph_resource_serialization;
      tc "taskgraph cross-resource latency" `Quick test_taskgraph_cross_resource_latency;
      tc "taskgraph max over edges" `Quick test_taskgraph_max_over_edges;
      tc "taskgraph validation" `Quick test_taskgraph_validation;
      tc "grid of ranks" `Quick test_grid_of_ranks;
      tc "sweep single rank" `Quick test_sweep_single_rank;
      tc "sweep known small cases" `Quick test_sweep_known_small;
      tc "sweep DP matches taskgraph" `Quick test_sweep_matches_taskgraph;
      tc "sweep pipeline efficiency" `Quick test_sweep_pipeline_efficiency_properties;
      tc "sweep monotone in message cost" `Quick test_sweep_monotone_in_messages;
    ] )
