(* Unit and property tests for the linalg library. *)

module Vec = Linalg.Vec
module Mat = Linalg.Mat

let feq = Alcotest.float 1e-9
let feq_loose = Alcotest.float 1e-6
let check = Alcotest.check

let test_vec_arith () =
  let a = [| 1.; 2.; 3. |] and b = [| 4.; 5.; 6. |] in
  check (Alcotest.array feq) "add" [| 5.; 7.; 9. |] (Vec.add a b);
  check (Alcotest.array feq) "sub" [| -3.; -3.; -3. |] (Vec.sub a b);
  check (Alcotest.array feq) "mul" [| 4.; 10.; 18. |] (Vec.mul a b);
  check feq "dot" 32. (Vec.dot a b);
  check feq "norm2" (sqrt 14.) (Vec.norm2 a);
  check feq "sum" 6. (Vec.sum a);
  check feq "mean" 2. (Vec.mean a);
  check feq "max" 3. (Vec.max a);
  check feq "min" 1. (Vec.min a);
  check Alcotest.int "argmax" 2 (Vec.argmax a);
  check Alcotest.int "argmin" 0 (Vec.argmin a);
  check feq "sq_dist" 27. (Vec.sq_dist a b)

let test_vec_axpy () =
  let x = [| 1.; 2. |] and y = [| 10.; 20. |] in
  Vec.axpy 2. x y;
  check (Alcotest.array feq) "axpy in place" [| 12.; 24. |] y

let test_vec_dim_mismatch () =
  Alcotest.check_raises "dot mismatch" (Invalid_argument "Vec.dot: dimension mismatch (2 vs 3)")
    (fun () -> ignore (Vec.dot [| 1.; 2. |] [| 1.; 2.; 3. |]))

let test_mat_basics () =
  let m = Mat.of_arrays [| [| 1.; 2. |]; [| 3.; 4. |] |] in
  check Alcotest.int "rows" 2 (Mat.rows m);
  check Alcotest.int "cols" 2 (Mat.cols m);
  check feq "get" 3. (Mat.get m 1 0);
  let t = Mat.transpose m in
  check feq "transpose" 2. (Mat.get t 1 0);
  check feq "trace" 5. (Mat.trace m);
  check (Alcotest.array feq) "row" [| 3.; 4. |] (Mat.row m 1);
  check (Alcotest.array feq) "col" [| 2.; 4. |] (Mat.col m 1)

let test_matmul () =
  let a = Mat.of_arrays [| [| 1.; 2. |]; [| 3.; 4. |] |] in
  let b = Mat.of_arrays [| [| 5.; 6. |]; [| 7.; 8. |] |] in
  let c = Mat.matmul a b in
  check (Alcotest.array feq) "matmul row0" [| 19.; 22. |] (Mat.row c 0);
  check (Alcotest.array feq) "matmul row1" [| 43.; 50. |] (Mat.row c 1)

let test_identity () =
  let i3 = Mat.identity 3 in
  let m = Mat.of_arrays [| [| 1.; 2.; 3. |]; [| 4.; 5.; 6. |]; [| 7.; 8.; 10. |] |] in
  let p = Mat.matmul i3 m in
  for r = 0 to 2 do
    check (Alcotest.array feq) "I*m = m" (Mat.row m r) (Mat.row p r)
  done

let test_mat_vec () =
  let m = Mat.of_arrays [| [| 1.; 2. |]; [| 3.; 4. |]; [| 5.; 6. |] |] in
  check (Alcotest.array feq) "mat_vec" [| 5.; 11.; 17. |] (Mat.mat_vec m [| 1.; 2. |]);
  check (Alcotest.array feq) "vec_mat" [| 22.; 28. |] (Mat.vec_mat [| 1.; 2.; 3. |] m)

let test_outer () =
  let o = Mat.outer [| 1.; 2. |] [| 3.; 4.; 5. |] in
  check Alcotest.int "outer rows" 2 (Mat.rows o);
  check Alcotest.int "outer cols" 3 (Mat.cols o);
  check feq "outer entry" 10. (Mat.get o 1 2)

let spd_of_seed seed n =
  (* Build L lower-triangular with positive diagonal, return L L^T. *)
  let rng = Prng.Rng.create seed in
  let l = Mat.create n n 0. in
  for i = 0 to n - 1 do
    for j = 0 to i do
      if i = j then Mat.set l i j (0.5 +. Prng.Rng.float rng)
      else Mat.set l i j (Prng.Rng.float rng -. 0.5)
    done
  done;
  (Mat.matmul l (Mat.transpose l), l)

let test_cholesky_reconstruct () =
  let a, _ = spd_of_seed 31 6 in
  let l = Mat.cholesky a in
  let rebuilt = Mat.matmul l (Mat.transpose l) in
  for i = 0 to 5 do
    for j = 0 to 5 do
      check feq_loose "L L^T = A" (Mat.get a i j) (Mat.get rebuilt i j)
    done
  done

let test_cholesky_rejects_non_spd () =
  let m = Mat.of_arrays [| [| 1.; 2. |]; [| 2.; 1. |] |] in
  Alcotest.check_raises "non-SPD rejected" (Failure "Mat.cholesky: matrix not positive definite")
    (fun () -> ignore (Mat.cholesky m))

let test_triangular_solves () =
  let l = Mat.of_arrays [| [| 2.; 0. |]; [| 1.; 3. |] |] in
  let x = Mat.solve_lower l [| 4.; 11. |] in
  check (Alcotest.array feq) "solve_lower" [| 2.; 3. |] x;
  let u = Mat.transpose l in
  let y = Mat.solve_upper u [| 7.; 6. |] in
  check (Alcotest.array feq) "solve_upper" [| 2.5; 2. |] y

let test_cholesky_solve () =
  let a, _ = spd_of_seed 33 5 in
  let l = Mat.cholesky a in
  let b = Array.init 5 (fun i -> float_of_int (i + 1)) in
  let x = Mat.cholesky_solve l b in
  let ax = Mat.mat_vec a x in
  Array.iteri (fun i bi -> check feq_loose "A x = b" bi ax.(i)) b

let test_log_det () =
  let a = Mat.of_arrays [| [| 4.; 0. |]; [| 0.; 9. |] |] in
  let l = Mat.cholesky a in
  check feq_loose "log det of diagonal" (log 36.) (Mat.log_det_from_cholesky l)

let prop_cholesky_solve =
  QCheck2.Test.make ~name:"cholesky_solve solves Ax=b for random SPD A" ~count:50
    QCheck2.Gen.(pair (int_range 1 12) (int_range 0 1_000_000))
    (fun (n, seed) ->
      let a, _ = spd_of_seed seed n in
      let rng = Prng.Rng.create (seed + 1) in
      let b = Array.init n (fun _ -> Prng.Rng.float rng -. 0.5) in
      let l = Mat.cholesky a in
      let x = Mat.cholesky_solve l b in
      let ax = Mat.mat_vec a x in
      Array.for_all2 (fun u v -> Float.abs (u -. v) < 1e-6) ax b)

let prop_matmul_assoc =
  QCheck2.Test.make ~name:"matmul is associative" ~count:50
    QCheck2.Gen.(int_range 0 1_000_000)
    (fun seed ->
      let rng = Prng.Rng.create seed in
      let rand n m = Mat.init n m (fun _ _ -> Prng.Rng.float rng -. 0.5) in
      let a = rand 3 4 and b = rand 4 2 and c = rand 2 5 in
      let left = Mat.matmul (Mat.matmul a b) c in
      let right = Mat.matmul a (Mat.matmul b c) in
      let ok = ref true in
      for i = 0 to 2 do
        for j = 0 to 4 do
          if Float.abs (Mat.get left i j -. Mat.get right i j) > 1e-9 then ok := false
        done
      done;
      !ok)

let suite =
  let tc = Alcotest.test_case in
  ( "linalg",
    [
      tc "vec arithmetic" `Quick test_vec_arith;
      tc "vec axpy" `Quick test_vec_axpy;
      tc "vec dimension mismatch" `Quick test_vec_dim_mismatch;
      tc "mat basics" `Quick test_mat_basics;
      tc "matmul" `Quick test_matmul;
      tc "identity" `Quick test_identity;
      tc "mat_vec / vec_mat" `Quick test_mat_vec;
      tc "outer product" `Quick test_outer;
      tc "cholesky reconstructs" `Quick test_cholesky_reconstruct;
      tc "cholesky rejects non-SPD" `Quick test_cholesky_rejects_non_spd;
      tc "triangular solves" `Quick test_triangular_solves;
      tc "cholesky solve" `Quick test_cholesky_solve;
      tc "log det" `Quick test_log_det;
      QCheck_alcotest.to_alcotest prop_cholesky_solve;
      QCheck_alcotest.to_alcotest prop_matmul_assoc;
    ] )
