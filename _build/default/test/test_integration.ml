(* End-to-end integration tests across libraries: the paper's headline
   claims at reduced scale, persistence round-trips, and live-kernel
   tuning. These use the real hpcsim datasets (memoized across the
   whole test binary). *)

let check = Alcotest.check

let table name = (Hpcsim.Registry.find name).Hpcsim.Registry.table ()

(* The headline claim of the paper, as a regression test: on Kripke,
   HiPerBOt finds better configurations than random sampling and at
   least matches GEIST's recall, averaged over seeds. *)
let test_hiperbot_beats_random_on_kripke () =
  let t = table "kripke" in
  let space = Dataset.Table.space t in
  let objective = Dataset.Table.objective_fn t in
  let good = Metrics.Recall.percentile_good_set t 0.05 in
  let sizes = [| 96 |] in
  let hb =
    Metrics.Runner.sweep ~reps:5 ~base_seed:50 ~sample_sizes:sizes ~good ~run:(fun ~rng ~budget ->
        Baselines.Outcome.of_tuner_result (Hiperbot.Tuner.run ~rng ~space ~objective ~budget ()))
  in
  let rnd =
    Metrics.Runner.sweep ~reps:5 ~base_seed:50 ~sample_sizes:sizes ~good ~run:(fun ~rng ~budget ->
        Baselines.Random_search.run ~rng ~space ~objective ~budget ())
  in
  check Alcotest.bool "hiperbot best below random best" true
    (hb.(0).Metrics.Runner.best_mean < rnd.(0).Metrics.Runner.best_mean);
  check Alcotest.bool "hiperbot recall above random recall" true
    (hb.(0).Metrics.Runner.recall_mean > 2. *. rnd.(0).Metrics.Runner.recall_mean)

let test_hiperbot_finds_hypre_best () =
  (* Paper SV-B: HiPerBOt narrows to HYPRE's absolute best within ~5%
     of the space. *)
  let t = table "hypre" in
  let space = Dataset.Table.space t in
  let result =
    Hiperbot.Tuner.run ~rng:(Prng.Rng.create 4) ~space
      ~objective:(Dataset.Table.objective_fn t) ~budget:241 ()
  in
  check (Alcotest.float 1e-9) "absolute best found" (Dataset.Table.best_value t)
    result.Hiperbot.Tuner.best_value

let test_transfer_beats_cold_start () =
  (* Transfer learning (SVII): with the 16-node study as prior, the
     64-node run should recall at least as many good configurations as
     a cold-start run with the same budget. *)
  let src = table "kripke_src" and trgt = table "kripke_trgt" in
  let space = Dataset.Table.space trgt in
  let objective = Dataset.Table.objective_fn trgt in
  let source =
    Array.init (Dataset.Table.size src) (fun i ->
        (Dataset.Table.config src i, Dataset.Table.objective src i))
  in
  let good = Metrics.Recall.tolerance_good_set trgt 0.15 in
  let budget = 150 in
  let avg f =
    let acc = ref 0. in
    for r = 0 to 2 do
      let rng = Prng.Rng.create (60 + r) in
      acc := !acc +. f ~rng
    done;
    !acc /. 3.
  in
  let with_prior =
    avg (fun ~rng ->
        let r = Hiperbot.Transfer.run ~rng ~space ~source ~objective ~budget () in
        Metrics.Recall.recall good r.Hiperbot.Tuner.history)
  in
  let cold =
    avg (fun ~rng ->
        let r = Hiperbot.Tuner.run ~rng ~space ~objective ~budget () in
        Metrics.Recall.recall good r.Hiperbot.Tuner.history)
  in
  check Alcotest.bool "prior at least matches cold start" true (with_prior >= cold)

let test_export_reimport_roundtrip () =
  let t = table "kripke" in
  let csv = Dataset.Table.to_csv t in
  let back = Dataset.Table.of_csv ~name:"kripke2" ~space:(Dataset.Table.space t) csv in
  check Alcotest.int "row count" (Dataset.Table.size t) (Dataset.Table.size back);
  check (Alcotest.float 1e-12) "best value survives" (Dataset.Table.best_value t)
    (Dataset.Table.best_value back);
  (* Space inference from the same CSV also reconstructs a table with
     identical objectives. *)
  let inferred = Dataset.Infer.table_of_csv ~name:"kripke3" csv in
  check Alcotest.int "inferred row count" (Dataset.Table.size t) (Dataset.Table.size inferred);
  check (Alcotest.float 1e-9) "inferred best value" (Dataset.Table.best_value t)
    (Dataset.Table.best_value inferred)

let test_importance_recovers_ground_truth () =
  let t = table "hypre" in
  let space = Dataset.Table.space t in
  let all =
    Array.init (Dataset.Table.size t) (fun i ->
        (Dataset.Table.config t i, Dataset.Table.objective t i))
  in
  let full = Hiperbot.Importance.of_observations space all in
  let rng = Prng.Rng.create 70 in
  let idx = Prng.Rng.sample_without_replacement rng (Array.length all / 10) (Array.length all) in
  let sampled = Hiperbot.Importance.of_observations space (Array.map (fun i -> all.(i)) idx) in
  check Alcotest.bool "sampled ranking correlates with exhaustive" true
    (Hiperbot.Importance.spearman sampled full > 0.5);
  check Alcotest.string "top parameter agrees" (fst full.(0)) (fst sampled.(0))

let test_runlog_warm_start_continuation () =
  (* Record a run, then continue from its log without repeating any
     of its configurations. *)
  let t = table "lulesh" in
  let space = Dataset.Table.space t in
  let objective = Dataset.Table.objective_fn t in
  let rec_ = Dataset.Runlog.recorder ~name:"phase1" ~seed:80 ~space in
  let phase1 =
    Hiperbot.Tuner.run
      ~on_evaluation:(fun i c y -> Dataset.Runlog.record_evaluation rec_ i c y)
      ~rng:(Prng.Rng.create 80) ~space ~objective ~budget:40 ()
  in
  let log = Dataset.Runlog.finish rec_ in
  let warm = Dataset.Runlog.history log in
  let phase2 =
    Hiperbot.Tuner.run ~warm_start:warm ~rng:(Prng.Rng.create 81) ~space ~objective ~budget:30 ()
  in
  let seen = Param.Config.Table.create 64 in
  Array.iter (fun (c, _) -> Param.Config.Table.replace seen c ()) warm;
  Array.iter
    (fun (c, _) ->
      if Param.Config.Table.mem seen c then Alcotest.fail "phase 2 repeated a phase-1 config")
    phase2.Hiperbot.Tuner.history;
  check Alcotest.bool "continuation at least as good as phase 1" true
    (phase2.Hiperbot.Tuner.best_value <= phase1.Hiperbot.Tuner.best_value +. 1e-9
    || phase2.Hiperbot.Tuner.best_value < Dataset.Table.best_value t *. 1.2)

let test_live_kernel_tuning () =
  Parallel.Pool.with_pool ~num_domains:0 (fun pool ->
      let space = Kernels.Live.matmul_space in
      let objective = Kernels.Live.matmul_objective ~pool ~n:32 () in
      let result =
        Hiperbot.Tuner.run
          ~options:{ Hiperbot.Tuner.default_options with n_init = 8 }
          ~rng:(Prng.Rng.create 90) ~space ~objective ~budget:16 ()
      in
      check Alcotest.int "live tuning completes the budget" 16
        (Array.length result.Hiperbot.Tuner.history);
      check Alcotest.bool "positive best time" true (result.Hiperbot.Tuner.best_value > 0.))

let test_gbt_tuner_on_dataset () =
  let t = table "lulesh" in
  let space = Dataset.Table.space t in
  let o =
    Baselines.Gbt_tuner.run ~rng:(Prng.Rng.create 91) ~space
      ~objective:(Dataset.Table.objective_fn t) ~budget:100 ()
  in
  check Alcotest.bool "gbt lands within 15% of best" true
    (o.Baselines.Outcome.best_value <= 1.15 *. Dataset.Table.best_value t)

let suite =
  let tc = Alcotest.test_case in
  ( "integration",
    [
      tc "hiperbot beats random on kripke" `Slow test_hiperbot_beats_random_on_kripke;
      tc "hiperbot finds hypre best" `Slow test_hiperbot_finds_hypre_best;
      tc "transfer beats cold start" `Slow test_transfer_beats_cold_start;
      tc "export / reimport roundtrip" `Slow test_export_reimport_roundtrip;
      tc "importance recovers ground truth" `Slow test_importance_recovers_ground_truth;
      tc "runlog warm-start continuation" `Slow test_runlog_warm_start_continuation;
      tc "live kernel tuning" `Slow test_live_kernel_tuning;
      tc "gbt tuner on a dataset" `Slow test_gbt_tuner_on_dataset;
    ] )
