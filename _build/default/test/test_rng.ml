(* Unit and property tests for the prng library. *)

let check = Alcotest.check
let checkf = Alcotest.check (Alcotest.float 1e-9)

let test_determinism () =
  let a = Prng.Rng.create 42 and b = Prng.Rng.create 42 in
  for _ = 1 to 100 do
    check Alcotest.int64 "same stream" (Prng.Rng.bits64 a) (Prng.Rng.bits64 b)
  done

let test_distinct_seeds () =
  let a = Prng.Rng.create 1 and b = Prng.Rng.create 2 in
  let differs = ref false in
  for _ = 1 to 10 do
    if not (Int64.equal (Prng.Rng.bits64 a) (Prng.Rng.bits64 b)) then differs := true
  done;
  check Alcotest.bool "streams differ" true !differs

let test_copy_independent () =
  let a = Prng.Rng.create 7 in
  let b = Prng.Rng.copy a in
  let x = Prng.Rng.bits64 a in
  let y = Prng.Rng.bits64 b in
  check Alcotest.int64 "copy starts at same state" x y;
  (* advancing a does not affect b *)
  let _ = Prng.Rng.bits64 a in
  let a3 = Prng.Rng.bits64 a in
  let b2 = Prng.Rng.bits64 b in
  check Alcotest.bool "copies advance independently" false (Int64.equal a3 b2)

let test_split_decorrelated () =
  let parent = Prng.Rng.create 11 in
  let child = Prng.Rng.split parent in
  let matches = ref 0 in
  for _ = 1 to 64 do
    if Int64.equal (Prng.Rng.bits64 parent) (Prng.Rng.bits64 child) then incr matches
  done;
  check Alcotest.bool "child stream decorrelated" true (!matches < 4)

let test_float_range () =
  let rng = Prng.Rng.create 3 in
  for _ = 1 to 10_000 do
    let x = Prng.Rng.float rng in
    if x < 0. || x >= 1. then Alcotest.failf "float out of [0,1): %f" x
  done

let test_float_mean () =
  let rng = Prng.Rng.create 5 in
  let n = 100_000 in
  let acc = ref 0. in
  for _ = 1 to n do
    acc := !acc +. Prng.Rng.float rng
  done;
  let mean = !acc /. float_of_int n in
  check Alcotest.bool "uniform mean near 0.5" true (Float.abs (mean -. 0.5) < 0.01)

let test_int_bounds_and_coverage () =
  let rng = Prng.Rng.create 9 in
  let counts = Array.make 7 0 in
  for _ = 1 to 7_000 do
    let k = Prng.Rng.int rng 7 in
    counts.(k) <- counts.(k) + 1
  done;
  Array.iteri
    (fun i c ->
      if c < 700 then Alcotest.failf "category %d badly undersampled: %d" i c)
    counts

let test_normal_moments () =
  let rng = Prng.Rng.create 13 in
  let n = 50_000 in
  let sum = ref 0. and sum2 = ref 0. in
  for _ = 1 to n do
    let z = Prng.Rng.normal rng in
    sum := !sum +. z;
    sum2 := !sum2 +. (z *. z)
  done;
  let mean = !sum /. float_of_int n in
  let var = (!sum2 /. float_of_int n) -. (mean *. mean) in
  check Alcotest.bool "normal mean ~0" true (Float.abs mean < 0.02);
  check Alcotest.bool "normal var ~1" true (Float.abs (var -. 1.) < 0.05)

let test_gaussian_shift () =
  let rng = Prng.Rng.create 15 in
  let n = 20_000 in
  let acc = ref 0. in
  for _ = 1 to n do
    acc := !acc +. Prng.Rng.gaussian rng ~mu:5. ~sigma:0.5
  done;
  check Alcotest.bool "gaussian mean ~5" true (Float.abs ((!acc /. float_of_int n) -. 5.) < 0.02)

let test_exponential_mean () =
  let rng = Prng.Rng.create 17 in
  let n = 50_000 in
  let acc = ref 0. in
  for _ = 1 to n do
    let x = Prng.Rng.exponential rng ~rate:2. in
    if x < 0. then Alcotest.fail "exponential negative";
    acc := !acc +. x
  done;
  check Alcotest.bool "exponential mean ~1/rate" true
    (Float.abs ((!acc /. float_of_int n) -. 0.5) < 0.02)

let test_categorical_weights () =
  let rng = Prng.Rng.create 19 in
  let weights = [| 1.; 0.; 3. |] in
  let counts = Array.make 3 0 in
  for _ = 1 to 40_000 do
    let k = Prng.Rng.categorical rng weights in
    counts.(k) <- counts.(k) + 1
  done;
  check Alcotest.int "zero-weight category never drawn" 0 counts.(1);
  let ratio = float_of_int counts.(2) /. float_of_int counts.(0) in
  check Alcotest.bool "3:1 ratio approximately" true (Float.abs (ratio -. 3.) < 0.2)

let test_shuffle_is_permutation () =
  let rng = Prng.Rng.create 21 in
  let arr = Array.init 100 (fun i -> i) in
  Prng.Rng.shuffle_in_place rng arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  check Alcotest.(array int) "shuffle preserves elements" (Array.init 100 (fun i -> i)) sorted;
  check Alcotest.bool "shuffle moved something" true (arr <> Array.init 100 (fun i -> i))

let test_sample_without_replacement () =
  let rng = Prng.Rng.create 23 in
  let sample = Prng.Rng.sample_without_replacement rng 50 100 in
  check Alcotest.int "sample size" 50 (Array.length sample);
  let seen = Hashtbl.create 50 in
  Array.iter
    (fun i ->
      if i < 0 || i >= 100 then Alcotest.failf "index out of range: %d" i;
      if Hashtbl.mem seen i then Alcotest.failf "duplicate index %d" i;
      Hashtbl.add seen i ())
    sample

let test_sample_full () =
  let rng = Prng.Rng.create 25 in
  let sample = Prng.Rng.sample_without_replacement rng 10 10 in
  let sorted = Array.copy sample in
  Array.sort compare sorted;
  check Alcotest.(array int) "k=n covers all" (Array.init 10 (fun i -> i)) sorted

let test_choose () =
  let rng = Prng.Rng.create 27 in
  let arr = [| "a"; "b"; "c" |] in
  for _ = 1 to 100 do
    let x = Prng.Rng.choose rng arr in
    check Alcotest.bool "choose returns an element" true (Array.exists (fun y -> y = x) arr)
  done

let prop_int_in_bounds =
  QCheck2.Test.make ~name:"int n is within [0, n)" ~count:500
    QCheck2.Gen.(pair (int_range 1 1_000_000) (int_range 0 1_000_000))
    (fun (n, seed) ->
      let rng = Prng.Rng.create seed in
      let x = Prng.Rng.int rng n in
      x >= 0 && x < n)

let prop_float_range_in_bounds =
  QCheck2.Test.make ~name:"float_range lo hi is within [lo, hi)" ~count:500
    QCheck2.Gen.(triple (float_range (-1e6) 1e6) (float_range 1e-6 1e6) (int_range 0 10_000))
    (fun (lo, width, seed) ->
      let hi = lo +. width in
      if not (lo < hi) then QCheck2.assume_fail ()
      else begin
        let rng = Prng.Rng.create seed in
        let x = Prng.Rng.float_range rng lo hi in
        x >= lo && x < hi
      end)

let suite =
  let tc = Alcotest.test_case in
  ( "prng",
    [
      tc "determinism" `Quick test_determinism;
      tc "distinct seeds" `Quick test_distinct_seeds;
      tc "copy independent" `Quick test_copy_independent;
      tc "split decorrelated" `Quick test_split_decorrelated;
      tc "float in [0,1)" `Quick test_float_range;
      tc "float mean" `Quick test_float_mean;
      tc "int bounds and coverage" `Quick test_int_bounds_and_coverage;
      tc "normal moments" `Quick test_normal_moments;
      tc "gaussian shift" `Quick test_gaussian_shift;
      tc "exponential mean" `Quick test_exponential_mean;
      tc "categorical weights" `Quick test_categorical_weights;
      tc "shuffle is a permutation" `Quick test_shuffle_is_permutation;
      tc "sample without replacement" `Quick test_sample_without_replacement;
      tc "sample k=n" `Quick test_sample_full;
      tc "choose" `Quick test_choose;
      QCheck_alcotest.to_alcotest prop_int_in_bounds;
      QCheck_alcotest.to_alcotest prop_float_range_in_bounds;
    ] )

let _ = checkf
