(* Tests for regression trees and gradient boosting. *)

let check = Alcotest.check

let xor_data () =
  (* A function a depth-1 tree cannot represent but depth-2 can. *)
  let inputs = [| [| 0.; 0. |]; [| 0.; 1. |]; [| 1.; 0. |]; [| 1.; 1. |] |] in
  let targets = [| 0.; 1.; 1.; 0. |] in
  (inputs, targets)

let test_tree_constant_data () =
  let t = Gbt.Tree.fit ~inputs:[| [| 0. |]; [| 1. |] |] ~targets:[| 5.; 5. |] () in
  check (Alcotest.float 1e-12) "predicts the constant" 5. (Gbt.Tree.predict t [| 0.5 |]);
  check Alcotest.int "single leaf" 1 (Gbt.Tree.n_leaves t)

let test_tree_simple_split () =
  let inputs = [| [| 0. |]; [| 1. |]; [| 2. |]; [| 10. |]; [| 11. |]; [| 12. |] |] in
  let targets = [| 1.; 1.; 1.; 9.; 9.; 9. |] in
  let t = Gbt.Tree.fit ~params:{ Gbt.Tree.max_depth = 1; min_samples_leaf = 1 } ~inputs ~targets () in
  check (Alcotest.float 1e-12) "left leaf" 1. (Gbt.Tree.predict t [| -5. |]);
  check (Alcotest.float 1e-12) "right leaf" 9. (Gbt.Tree.predict t [| 50. |]);
  check Alcotest.int "two leaves" 2 (Gbt.Tree.n_leaves t);
  check Alcotest.int "depth 1" 1 (Gbt.Tree.depth t)

let test_tree_xor_needs_depth () =
  let inputs, targets = xor_data () in
  let shallow = Gbt.Tree.fit ~params:{ Gbt.Tree.max_depth = 1; min_samples_leaf = 1 } ~inputs ~targets () in
  let deep = Gbt.Tree.fit ~params:{ Gbt.Tree.max_depth = 2; min_samples_leaf = 1 } ~inputs ~targets () in
  let mse t =
    let acc = ref 0. in
    Array.iteri
      (fun i x ->
        let d = Gbt.Tree.predict t x -. targets.(i) in
        acc := !acc +. (d *. d))
      inputs;
    !acc /. 4.
  in
  check Alcotest.bool "depth-2 fits xor exactly" true (mse deep < 1e-12);
  check Alcotest.bool "depth-1 cannot" true (mse shallow > 0.1)

let test_tree_min_samples_leaf () =
  let inputs = [| [| 0. |]; [| 1. |]; [| 2. |] |] in
  let targets = [| 0.; 1.; 2. |] in
  let t = Gbt.Tree.fit ~params:{ Gbt.Tree.max_depth = 5; min_samples_leaf = 2 } ~inputs ~targets () in
  (* Only 3 samples and min leaf 2: at most one split is impossible
     (2+2 > 3), so the tree must stay a single leaf. *)
  check Alcotest.int "no split possible" 1 (Gbt.Tree.n_leaves t)

let test_tree_validation () =
  Alcotest.check_raises "empty" (Invalid_argument "Tree.fit: empty data") (fun () ->
      ignore (Gbt.Tree.fit ~inputs:[||] ~targets:[||] ()));
  Alcotest.check_raises "mismatch" (Invalid_argument "Tree.fit: input/target length mismatch")
    (fun () -> ignore (Gbt.Tree.fit ~inputs:[| [| 0. |] |] ~targets:[| 1.; 2. |] ()))

let smooth_data () =
  let rng = Prng.Rng.create 11 in
  let inputs = Array.init 200 (fun _ -> [| Prng.Rng.float rng; Prng.Rng.float rng |]) in
  let f x = (3. *. x.(0)) +. sin (6. *. x.(1)) in
  (inputs, Array.map f inputs)

let test_boosted_fits_smooth_function () =
  let inputs, targets = smooth_data () in
  let model = Gbt.Boosted.fit ~inputs ~targets () in
  check Alcotest.int "n_trees" 100 (Gbt.Boosted.n_trees model);
  check Alcotest.bool "training mse small" true (Gbt.Boosted.training_mse model ~inputs ~targets < 0.01)

let test_boosted_staged_monotone () =
  let inputs, targets = smooth_data () in
  let model = Gbt.Boosted.fit ~inputs ~targets () in
  let staged = Gbt.Boosted.staged_mse model ~inputs ~targets in
  check Alcotest.bool "more trees never hurt training mse (squared loss)" true
    (staged.(Array.length staged - 1) <= staged.(0));
  check (Alcotest.float 1e-9) "final stage equals training_mse"
    (Gbt.Boosted.training_mse model ~inputs ~targets)
    staged.(Array.length staged - 1)

let test_boosted_beats_single_tree () =
  let inputs, targets = smooth_data () in
  let tree = Gbt.Tree.fit ~inputs ~targets () in
  let tree_mse =
    let acc = ref 0. in
    Array.iteri
      (fun i x ->
        let d = Gbt.Tree.predict tree x -. targets.(i) in
        acc := !acc +. (d *. d))
      inputs;
    !acc /. float_of_int (Array.length inputs)
  in
  let model = Gbt.Boosted.fit ~inputs ~targets () in
  check Alcotest.bool "ensemble beats one tree" true
    (Gbt.Boosted.training_mse model ~inputs ~targets < tree_mse)

let test_boosted_validation () =
  Alcotest.check_raises "bad lr" (Invalid_argument "Boosted.fit: learning_rate outside (0, 1]")
    (fun () ->
      ignore
        (Gbt.Boosted.fit
           ~params:{ Gbt.Boosted.default_params with learning_rate = 0. }
           ~inputs:[| [| 0. |] |] ~targets:[| 1. |] ()))

let test_gbt_tuner_runs () =
  let space =
    Param.Space.make
      [ Param.Spec.ordinal_ints "a" [ 0; 1; 2; 3; 4 ]; Param.Spec.ordinal_ints "b" [ 0; 1; 2; 3; 4 ] ]
  in
  let objective c =
    let v i = float_of_int (Param.Value.to_index c.(i)) in
    1. +. ((v 0 -. 2.) ** 2.) +. ((v 1 -. 3.) ** 2.)
  in
  let o = Baselines.Gbt_tuner.run ~rng:(Prng.Rng.create 5) ~space ~objective ~budget:24 () in
  check Alcotest.int "budget respected" 24 (Array.length o.Baselines.Outcome.history);
  let seen = Param.Config.Table.create 24 in
  Array.iter
    (fun (c, _) ->
      if Param.Config.Table.mem seen c then Alcotest.fail "duplicate evaluation";
      Param.Config.Table.replace seen c ())
    o.Baselines.Outcome.history;
  check Alcotest.bool "near optimum" true (o.Baselines.Outcome.best_value <= 2.)

let suite =
  let tc = Alcotest.test_case in
  ( "gbt",
    [
      tc "tree: constant data" `Quick test_tree_constant_data;
      tc "tree: simple split" `Quick test_tree_simple_split;
      tc "tree: xor needs depth" `Quick test_tree_xor_needs_depth;
      tc "tree: min samples leaf" `Quick test_tree_min_samples_leaf;
      tc "tree: validation" `Quick test_tree_validation;
      tc "boosted: fits smooth function" `Quick test_boosted_fits_smooth_function;
      tc "boosted: staged mse" `Quick test_boosted_staged_monotone;
      tc "boosted: beats a single tree" `Quick test_boosted_beats_single_tree;
      tc "boosted: validation" `Quick test_boosted_validation;
      tc "gbt tuner runs" `Quick test_gbt_tuner_runs;
    ] )
