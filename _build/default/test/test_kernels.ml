(* Tests for the executable kernels: every tiling/blocking/schedule
   variant must compute the same result as the naive reference. *)

let check = Alcotest.check

(* ---- Stencil ---- *)

let grid () =
  Kernels.Stencil.create_grid ~rows:17 ~cols:23 (fun r c ->
      sin (float_of_int ((r * 23) + c)) +. (0.1 *. float_of_int (r - c)))

let reference_iters g iters =
  let rec go g n = if n = 0 then g else go (Kernels.Stencil.sweep_reference g) (n - 1) in
  go g iters

let test_stencil_matches_reference () =
  Parallel.Pool.with_pool ~num_domains:2 (fun pool ->
      let g = grid () in
      let expected = reference_iters g 5 in
      List.iter
        (fun (tile_rows, tile_cols, schedule) ->
          let got = Kernels.Stencil.run ~pool ~schedule ~tile_rows ~tile_cols ~iters:5 g in
          let err = Kernels.Stencil.residual expected got in
          if err > 1e-12 then
            Alcotest.failf "tiles %dx%d: residual %g" tile_rows tile_cols err)
        [
          (1, 1, Parallel.Pool.Static);
          (4, 4, Parallel.Pool.Dynamic 2);
          (7, 5, Parallel.Pool.Guided);
          (100, 100, Parallel.Pool.Static);
          (15, 21, Parallel.Pool.Dynamic 1);
        ])

let test_stencil_zero_iters_identity () =
  Parallel.Pool.with_pool ~num_domains:1 (fun pool ->
      let g = grid () in
      let out = Kernels.Stencil.run ~pool ~tile_rows:8 ~tile_cols:8 ~iters:0 g in
      check (Alcotest.float 0.) "zero iterations leave the grid unchanged" 0.
        (Kernels.Stencil.residual g out))

let test_stencil_boundary_fixed () =
  Parallel.Pool.with_pool ~num_domains:1 (fun pool ->
      let g = grid () in
      let out = Kernels.Stencil.run ~pool ~tile_rows:4 ~tile_cols:4 ~iters:3 g in
      for c = 0 to 22 do
        check (Alcotest.float 0.) "top boundary fixed" (Kernels.Stencil.get g 0 c)
          (Kernels.Stencil.get out 0 c);
        check (Alcotest.float 0.) "bottom boundary fixed" (Kernels.Stencil.get g 16 c)
          (Kernels.Stencil.get out 16 c)
      done)

let test_stencil_converges () =
  (* With fixed boundaries, Jacobi must damp toward the harmonic
     solution: the residual between successive iterates shrinks. *)
  Parallel.Pool.with_pool ~num_domains:1 (fun pool ->
      let g = grid () in
      let a = Kernels.Stencil.run ~pool ~tile_rows:8 ~tile_cols:8 ~iters:10 g in
      let b = Kernels.Stencil.run ~pool ~tile_rows:8 ~tile_cols:8 ~iters:11 g in
      let c = Kernels.Stencil.run ~pool ~tile_rows:8 ~tile_cols:8 ~iters:50 g in
      let d = Kernels.Stencil.run ~pool ~tile_rows:8 ~tile_cols:8 ~iters:51 g in
      check Alcotest.bool "successive change shrinks" true
        (Kernels.Stencil.residual c d < Kernels.Stencil.residual a b))

let test_stencil_validation () =
  Alcotest.check_raises "tiny grid" (Invalid_argument "Stencil.create_grid: grid must be at least 3x3")
    (fun () -> ignore (Kernels.Stencil.create_grid ~rows:2 ~cols:5 (fun _ _ -> 0.)));
  Parallel.Pool.with_pool ~num_domains:0 (fun pool ->
      Alcotest.check_raises "bad tiles" (Invalid_argument "Stencil.run: tile sizes must be positive")
        (fun () ->
          ignore (Kernels.Stencil.run ~pool ~tile_rows:0 ~tile_cols:4 ~iters:1 (grid ()))))

(* ---- Matmul ---- *)

let matrices n seed =
  let rng = Prng.Rng.create seed in
  let a = Array.init (n * n) (fun _ -> Prng.Rng.float rng -. 0.5) in
  let b = Array.init (n * n) (fun _ -> Prng.Rng.float rng -. 0.5) in
  (a, b)

let max_abs_diff a b =
  let worst = ref 0. in
  Array.iteri
    (fun i x ->
      let d = Float.abs (x -. b.(i)) in
      if d > !worst then worst := d)
    a;
  !worst

let test_matmul_matches_reference () =
  Parallel.Pool.with_pool ~num_domains:2 (fun pool ->
      let n = 33 in
      let a, b = matrices n 3 in
      let expected = Kernels.Matmul.multiply_reference ~a ~b n in
      List.iter
        (fun order ->
          List.iter
            (fun (bi, bj, bk) ->
              let got =
                Kernels.Matmul.multiply ~pool ~order ~block_i:bi ~block_j:bj ~block_k:bk ~a ~b n
              in
              let err = max_abs_diff expected got in
              if err > 1e-9 then
                Alcotest.failf "order %s blocks %d/%d/%d: error %g"
                  (Kernels.Matmul.order_label order) bi bj bk err)
            [ (8, 8, 8); (5, 7, 11); (64, 64, 64); (1, 33, 4) ])
        Kernels.Matmul.all_orders)

let test_matmul_identity () =
  Parallel.Pool.with_pool ~num_domains:1 (fun pool ->
      let n = 16 in
      let a, _ = matrices n 5 in
      let id = Array.init (n * n) (fun k -> if k / n = k mod n then 1. else 0.) in
      let got = Kernels.Matmul.multiply ~pool ~block_i:4 ~block_j:4 ~block_k:4 ~a ~b:id n in
      check (Alcotest.float 1e-12) "A * I = A" 0. (max_abs_diff a got))

let test_matmul_schedules_agree () =
  Parallel.Pool.with_pool ~num_domains:2 (fun pool ->
      let n = 24 in
      let a, b = matrices n 7 in
      let base =
        Kernels.Matmul.multiply ~pool ~schedule:Parallel.Pool.Static ~block_i:8 ~block_j:8
          ~block_k:8 ~a ~b n
      in
      List.iter
        (fun schedule ->
          let got = Kernels.Matmul.multiply ~pool ~schedule ~block_i:8 ~block_j:8 ~block_k:8 ~a ~b n in
          check (Alcotest.float 1e-12) "schedule-independent result" 0. (max_abs_diff base got))
        [ Parallel.Pool.Dynamic 1; Parallel.Pool.Guided ])

let test_matmul_validation () =
  Parallel.Pool.with_pool ~num_domains:0 (fun pool ->
      let a, b = matrices 4 9 in
      Alcotest.check_raises "bad blocks" (Invalid_argument "Matmul: block sizes must be positive")
        (fun () ->
          ignore (Kernels.Matmul.multiply ~pool ~block_i:0 ~block_j:4 ~block_k:4 ~a ~b 4));
      Alcotest.check_raises "shape mismatch" (Invalid_argument "Matmul: matrices must be n*n")
        (fun () -> ignore (Kernels.Matmul.multiply_reference ~a ~b 5)))

(* ---- SpMV ---- *)

let test_spmv_matches_reference () =
  Parallel.Pool.with_pool ~num_domains:2 (fun pool ->
      let rng = Prng.Rng.create 13 in
      let m = Kernels.Spmv.random_band ~rng ~n:200 ~band:5 ~fill:0.6 in
      let x = Array.init 200 (fun i -> sin (float_of_int i)) in
      let expected = Kernels.Spmv.multiply_reference m x in
      List.iter
        (fun schedule ->
          let got = Kernels.Spmv.multiply ~pool ~schedule m x in
          check (Alcotest.float 0.) "bit-identical to reference" 0. (max_abs_diff expected got))
        [ Parallel.Pool.Static; Parallel.Pool.Dynamic 7; Parallel.Pool.Guided ])

let test_spmv_band_structure () =
  let rng = Prng.Rng.create 14 in
  let m = Kernels.Spmv.random_band ~rng ~n:50 ~band:2 ~fill:0.5 in
  check Alcotest.int "square" 50 m.Kernels.Spmv.n_cols;
  (* Every row has its diagonal and stays within the band. *)
  for i = 0 to 49 do
    let has_diag = ref false in
    for k = m.Kernels.Spmv.row_ptr.(i) to m.Kernels.Spmv.row_ptr.(i + 1) - 1 do
      let c = m.Kernels.Spmv.col_idx.(k) in
      if c = i then has_diag := true;
      if abs (c - i) > 2 then Alcotest.failf "row %d: column %d outside band" i c
    done;
    if not !has_diag then Alcotest.failf "row %d missing diagonal" i
  done

let test_spmv_skewed_imbalance () =
  let rng = Prng.Rng.create 15 in
  let m = Kernels.Spmv.random_skewed ~rng ~n:500 ~avg_nnz:8 ~skew:1.0 in
  check Alcotest.bool "has nonzeros" true (Kernels.Spmv.nnz m > 500);
  (* Skew implies the longest row is much longer than the median. *)
  let lengths =
    Array.init 500 (fun i -> m.Kernels.Spmv.row_ptr.(i + 1) - m.Kernels.Spmv.row_ptr.(i))
  in
  Array.sort compare lengths;
  check Alcotest.bool "heavy head" true (lengths.(499) > 4 * lengths.(250))

let test_spmv_identity () =
  Parallel.Pool.with_pool ~num_domains:1 (fun pool ->
      (* Build an identity-like CSR through random_band with band 0. *)
      let rng = Prng.Rng.create 16 in
      let m = Kernels.Spmv.random_band ~rng ~n:10 ~band:0 ~fill:1.0 in
      let x = Array.init 10 float_of_int in
      let y = Kernels.Spmv.multiply ~pool m x in
      (* y.(i) = v_i * x_i with v_i the random diagonal value. *)
      for i = 0 to 9 do
        check (Alcotest.float 1e-12) "diagonal action"
          (m.Kernels.Spmv.values.(m.Kernels.Spmv.row_ptr.(i)) *. x.(i))
          y.(i)
      done)

let test_spmv_validation () =
  Parallel.Pool.with_pool ~num_domains:0 (fun pool ->
      let rng = Prng.Rng.create 17 in
      let m = Kernels.Spmv.random_band ~rng ~n:4 ~band:1 ~fill:1.0 in
      Alcotest.check_raises "wrong vector length"
        (Invalid_argument "Spmv: vector length must equal n_cols") (fun () ->
          ignore (Kernels.Spmv.multiply ~pool m [| 1.; 2. |])))

(* ---- Live adapters ---- *)

let test_live_objectives_positive () =
  Parallel.Pool.with_pool ~num_domains:1 (fun pool ->
      let rng = Prng.Rng.create 77 in
      let stencil_obj = Kernels.Live.stencil_objective ~pool ~rows:32 ~cols:32 ~iters:2 () in
      let matmul_obj = Kernels.Live.matmul_objective ~pool ~n:24 () in
      for _ = 1 to 5 do
        let c1 = Param.Space.random_config Kernels.Live.stencil_space rng in
        let t1 = stencil_obj c1 in
        if t1 < 0. then Alcotest.fail "negative stencil time";
        let c2 = Param.Space.random_config Kernels.Live.matmul_space rng in
        let t2 = matmul_obj c2 in
        if t2 < 0. then Alcotest.fail "negative matmul time"
      done)

let test_live_spaces_finite () =
  check Alcotest.(option int) "stencil space" (Some (6 * 6 * 4))
    (Param.Space.cardinality Kernels.Live.stencil_space);
  check Alcotest.(option int) "matmul space" (Some (4 * 4 * 4 * 4 * 4))
    (Param.Space.cardinality Kernels.Live.matmul_space)

let test_schedule_labels () =
  List.iter
    (fun l -> ignore (Kernels.Live.schedule_of_label l))
    Kernels.Live.schedule_labels;
  Alcotest.check_raises "unknown label"
    (Invalid_argument "Live.schedule_of_label: unknown schedule \"nope\"") (fun () ->
      ignore (Kernels.Live.schedule_of_label "nope"))

let suite =
  let tc = Alcotest.test_case in
  ( "kernels",
    [
      tc "stencil matches reference" `Quick test_stencil_matches_reference;
      tc "stencil zero iters" `Quick test_stencil_zero_iters_identity;
      tc "stencil boundary fixed" `Quick test_stencil_boundary_fixed;
      tc "stencil converges" `Quick test_stencil_converges;
      tc "stencil validation" `Quick test_stencil_validation;
      tc "matmul matches reference" `Quick test_matmul_matches_reference;
      tc "matmul identity" `Quick test_matmul_identity;
      tc "matmul schedules agree" `Quick test_matmul_schedules_agree;
      tc "matmul validation" `Quick test_matmul_validation;
      tc "spmv matches reference" `Quick test_spmv_matches_reference;
      tc "spmv band structure" `Quick test_spmv_band_structure;
      tc "spmv skewed imbalance" `Quick test_spmv_skewed_imbalance;
      tc "spmv diagonal action" `Quick test_spmv_identity;
      tc "spmv validation" `Quick test_spmv_validation;
      tc "live objectives positive" `Quick test_live_objectives_positive;
      tc "live spaces finite" `Quick test_live_spaces_finite;
      tc "schedule labels" `Quick test_schedule_labels;
    ] )
