(* Tests for run-log recording and persistence. *)

let check = Alcotest.check

let space =
  Param.Space.make
    [ Param.Spec.categorical "c" [ "a"; "b" ]; Param.Spec.ordinal_ints "o" [ 1; 2; 4 ] ]

let config c o = [| Param.Value.Categorical c; Param.Value.Ordinal o |]

let sample_log () =
  Dataset.Runlog.create ~name:"demo" ~seed:42 ~space
    [
      { Dataset.Runlog.index = 0; config = config 0 0; status = Dataset.Runlog.Ok 5.5 };
      { index = 2; config = config 1 2; status = Dataset.Runlog.Ok 3.25 };
      { index = 1; config = config 0 1; status = Dataset.Runlog.Failed };
    ]

let test_create_sorts_and_validates () =
  let log = sample_log () in
  check Alcotest.int "three entries" 3 (Array.length log.Dataset.Runlog.entries);
  check Alcotest.int "sorted by index" 1 log.Dataset.Runlog.entries.(1).Dataset.Runlog.index;
  Alcotest.check_raises "duplicate index" (Invalid_argument "Runlog.create: duplicate index")
    (fun () ->
      ignore
        (Dataset.Runlog.create ~name:"x" ~seed:0 ~space
           [
             { Dataset.Runlog.index = 0; config = config 0 0; status = Dataset.Runlog.Ok 1. };
             { index = 0; config = config 1 1; status = Dataset.Runlog.Ok 2. };
           ]))

let test_history_and_best () =
  let log = sample_log () in
  let h = Dataset.Runlog.history log in
  check Alcotest.int "history excludes failures" 2 (Array.length h);
  match Dataset.Runlog.best log with
  | Some (c, y) ->
      check (Alcotest.float 1e-12) "best value" 3.25 y;
      check Alcotest.bool "best config" true (Param.Config.equal c (config 1 2))
  | None -> Alcotest.fail "expected a best entry"

let test_roundtrip () =
  let log = sample_log () in
  let text = Dataset.Runlog.to_string log in
  let parsed = Dataset.Runlog.of_string text in
  check Alcotest.string "name" "demo" parsed.Dataset.Runlog.name;
  check Alcotest.int "seed" 42 parsed.Dataset.Runlog.seed;
  check Alcotest.int "entries" 3 (Array.length parsed.Dataset.Runlog.entries);
  Array.iteri
    (fun i e ->
      let orig = log.Dataset.Runlog.entries.(i) in
      check Alcotest.int "index" orig.Dataset.Runlog.index e.Dataset.Runlog.index;
      check Alcotest.bool "config" true (Param.Config.equal orig.config e.Dataset.Runlog.config);
      match (orig.status, e.Dataset.Runlog.status) with
      | Dataset.Runlog.Ok a, Dataset.Runlog.Ok b -> check (Alcotest.float 1e-12) "value" a b
      | Dataset.Runlog.Failed, Dataset.Runlog.Failed -> ()
      | _ -> Alcotest.fail "status mismatch")
    parsed.Dataset.Runlog.entries

let test_file_roundtrip () =
  let log = sample_log () in
  let path = Filename.temp_file "runlog" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Dataset.Runlog.save log path;
      let loaded = Dataset.Runlog.load path in
      check Alcotest.int "entries survive the file" 3 (Array.length loaded.Dataset.Runlog.entries))

let test_recorder_with_tuner () =
  (* Wire a recorder into a resilient tuning run and check it captures
     every evaluation and failure. *)
  let rec_ = Dataset.Runlog.recorder ~name:"wired" ~seed:7 ~space in
  let objective c = if Param.Value.to_index c.(1) = 2 then None else Some 1.5 in
  let result =
    Hiperbot.Tuner.run_resilient
      ~options:{ Hiperbot.Tuner.default_options with n_init = 2 }
      ~on_evaluation:(fun i c y -> Dataset.Runlog.record_evaluation rec_ i c y)
      ~on_failure:(fun i c -> Dataset.Runlog.record_failure rec_ i c)
      ~rng:(Prng.Rng.create 31) ~space ~objective ~budget:6 ()
  in
  let log = Dataset.Runlog.finish rec_ in
  check Alcotest.int "log captures every attempt"
    (Array.length result.Hiperbot.Tuner.history + Array.length result.Hiperbot.Tuner.failures)
    (Array.length log.Dataset.Runlog.entries);
  check Alcotest.int "log history matches tuner history"
    (Array.length result.Hiperbot.Tuner.history)
    (Array.length (Dataset.Runlog.history log))

let test_malformed_rejected () =
  Alcotest.check_raises "bad magic" (Failure "Runlog: missing '#runlog v1' magic") (fun () ->
      ignore (Dataset.Runlog.of_string "hello\n"));
  Alcotest.check_raises "unknown status" (Failure "Runlog: unknown status \"meh\"") (fun () ->
      ignore
        (Dataset.Runlog.of_string
           "#runlog v1\n#name x\n#seed 1\n#spec c=cat:a,b\nindex,c,objective,status\n0,a,1.0,meh\n"))

let test_continuous_unsupported () =
  let cont_space = Param.Space.make [ Param.Spec.continuous "x" ~lo:0. ~hi:1. ] in
  let log =
    Dataset.Runlog.create ~name:"c" ~seed:0 ~space:cont_space
      [ { Dataset.Runlog.index = 0; config = [| Param.Value.Continuous 0.5 |]; status = Dataset.Runlog.Ok 1. } ]
  in
  Alcotest.check_raises "continuous serialization rejected"
    (Invalid_argument "Runlog: continuous parameters are not supported") (fun () ->
      ignore (Dataset.Runlog.to_string log))

let suite =
  let tc = Alcotest.test_case in
  ( "runlog",
    [
      tc "create sorts and validates" `Quick test_create_sorts_and_validates;
      tc "history and best" `Quick test_history_and_best;
      tc "string roundtrip" `Quick test_roundtrip;
      tc "file roundtrip" `Quick test_file_roundtrip;
      tc "recorder wired into tuner" `Quick test_recorder_with_tuner;
      tc "malformed rejected" `Quick test_malformed_rejected;
      tc "continuous unsupported" `Quick test_continuous_unsupported;
    ] )
