(* Tests for the MLP regressor. *)

let check = Alcotest.check

let test_activations () =
  check (Alcotest.float 1e-9) "relu positive" 2. (Nn.Activation.apply Nn.Activation.Relu 2.);
  check (Alcotest.float 1e-9) "relu negative" 0. (Nn.Activation.apply Nn.Activation.Relu (-2.));
  check (Alcotest.float 1e-9) "relu' positive" 1. (Nn.Activation.derivative Nn.Activation.Relu 2.);
  check (Alcotest.float 1e-9) "relu' negative" 0. (Nn.Activation.derivative Nn.Activation.Relu (-2.));
  check (Alcotest.float 1e-9) "identity" 3.5 (Nn.Activation.apply Nn.Activation.Identity 3.5);
  check (Alcotest.float 1e-6) "tanh'(0)" 1. (Nn.Activation.derivative Nn.Activation.Tanh 0.)

let test_create_validation () =
  let rng = Prng.Rng.create 1 in
  Alcotest.check_raises "output must be 1" (Invalid_argument "Mlp.create: output size must be 1")
    (fun () -> ignore (Nn.Mlp.create ~rng ~layer_sizes:[ 2; 3 ] ()));
  Alcotest.check_raises "too few layers"
    (Invalid_argument "Mlp.create: need at least input and output sizes") (fun () ->
      ignore (Nn.Mlp.create ~rng ~layer_sizes:[ 1 ] ()))

let test_n_parameters () =
  let rng = Prng.Rng.create 1 in
  let m = Nn.Mlp.create ~rng ~layer_sizes:[ 3; 4; 1 ] () in
  (* (3*4 + 4) + (4*1 + 1) = 21 *)
  check Alcotest.int "parameter count" 21 (Nn.Mlp.n_parameters m)

let linear_data ~n ~rng =
  let inputs = Array.init n (fun _ -> [| Prng.Rng.float rng; Prng.Rng.float rng |]) in
  let targets = Array.map (fun x -> (2. *. x.(0)) -. (1.5 *. x.(1)) +. 0.3) inputs in
  (inputs, targets)

let test_learns_linear_function () =
  let rng = Prng.Rng.create 5 in
  let inputs, targets = linear_data ~n:128 ~rng in
  let m = Nn.Mlp.create ~rng ~layer_sizes:[ 2; 16; 1 ] () in
  let before = Nn.Mlp.mse m ~inputs ~targets in
  let config = { Nn.Mlp.default_training with epochs = 300 } in
  let (_ : float) = Nn.Mlp.train m ~rng ~config ~inputs ~targets () in
  let after = Nn.Mlp.mse m ~inputs ~targets in
  check Alcotest.bool "training reduces mse" true (after < before);
  check Alcotest.bool "fit is tight" true (after < 1e-3)

let test_generalizes () =
  let rng = Prng.Rng.create 6 in
  let inputs, targets = linear_data ~n:256 ~rng in
  let m = Nn.Mlp.create ~rng ~layer_sizes:[ 2; 16; 1 ] () in
  let (_ : float) = Nn.Mlp.train m ~rng ~config:{ Nn.Mlp.default_training with epochs = 300 } ~inputs ~targets () in
  let test_inputs, test_targets = linear_data ~n:64 ~rng in
  check Alcotest.bool "holdout mse small" true (Nn.Mlp.mse m ~inputs:test_inputs ~targets:test_targets < 5e-3)

let test_copy_independent () =
  let rng = Prng.Rng.create 7 in
  let inputs, targets = linear_data ~n:64 ~rng in
  let m = Nn.Mlp.create ~rng ~layer_sizes:[ 2; 8; 1 ] () in
  let snapshot = Nn.Mlp.copy m in
  let x = [| 0.3; 0.7 |] in
  let before = Nn.Mlp.predict snapshot x in
  let (_ : float) = Nn.Mlp.train m ~rng ~config:{ Nn.Mlp.default_training with epochs = 50 } ~inputs ~targets () in
  check (Alcotest.float 1e-12) "copy unaffected by training the original" before
    (Nn.Mlp.predict snapshot x);
  check Alcotest.bool "original changed" true (Nn.Mlp.predict m x <> before)

let test_fine_tune_shifts_model () =
  (* Train on f, fine-tune on g = f + 1; predictions should move
     toward g. *)
  let rng = Prng.Rng.create 8 in
  let inputs, targets = linear_data ~n:128 ~rng in
  let m = Nn.Mlp.create ~rng ~layer_sizes:[ 2; 16; 1 ] () in
  let (_ : float) = Nn.Mlp.train m ~rng ~config:{ Nn.Mlp.default_training with epochs = 200 } ~inputs ~targets () in
  let shifted = Array.map (fun y -> y +. 1.) targets in
  let (_ : float) =
    Nn.Mlp.fine_tune m ~rng ~config:{ Nn.Mlp.default_training with epochs = 200 } ~inputs ~targets:shifted ()
  in
  check Alcotest.bool "fine-tuned toward shifted targets" true
    (Nn.Mlp.mse m ~inputs ~targets:shifted < 0.02)

let test_train_validation () =
  let rng = Prng.Rng.create 9 in
  let m = Nn.Mlp.create ~rng ~layer_sizes:[ 2; 4; 1 ] () in
  Alcotest.check_raises "empty data" (Invalid_argument "Mlp.train: empty data") (fun () ->
      ignore (Nn.Mlp.train m ~rng ~inputs:[||] ~targets:[||] ()));
  Alcotest.check_raises "length mismatch" (Invalid_argument "Mlp.train: input/target length mismatch")
    (fun () -> ignore (Nn.Mlp.train m ~rng ~inputs:[| [| 0.; 0. |] |] ~targets:[| 1.; 2. |] ()))

let test_deterministic_training () =
  let build seed =
    let rng = Prng.Rng.create seed in
    let inputs, targets = linear_data ~n:64 ~rng in
    let m = Nn.Mlp.create ~rng ~layer_sizes:[ 2; 8; 1 ] () in
    let (_ : float) = Nn.Mlp.train m ~rng ~config:{ Nn.Mlp.default_training with epochs = 20 } ~inputs ~targets () in
    Nn.Mlp.predict m [| 0.25; 0.75 |]
  in
  check (Alcotest.float 1e-12) "same seed, same model" (build 42) (build 42)

let suite =
  let tc = Alcotest.test_case in
  ( "nn",
    [
      tc "activations" `Quick test_activations;
      tc "create validation" `Quick test_create_validation;
      tc "parameter count" `Quick test_n_parameters;
      tc "learns a linear function" `Quick test_learns_linear_function;
      tc "generalizes" `Quick test_generalizes;
      tc "copy independent" `Quick test_copy_independent;
      tc "fine-tune shifts model" `Quick test_fine_tune_shifts_model;
      tc "train validation" `Quick test_train_validation;
      tc "deterministic training" `Quick test_deterministic_training;
    ] )
