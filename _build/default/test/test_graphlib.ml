(* Tests for graphs, lattice/k-NN construction, and CAMLP label
   propagation. *)

let check = Alcotest.check

(* ---- Graph ---- *)

let path4 = Graphlib.Graph.of_edges ~n:4 [ (0, 1); (1, 2); (2, 3) ]

let test_graph_basics () =
  check Alcotest.int "nodes" 4 (Graphlib.Graph.n_nodes path4);
  check Alcotest.int "edges" 3 (Graphlib.Graph.n_edges path4);
  check Alcotest.int "degree endpoint" 1 (Graphlib.Graph.degree path4 0);
  check Alcotest.int "degree middle" 2 (Graphlib.Graph.degree path4 1);
  check Alcotest.bool "mem_edge" true (Graphlib.Graph.mem_edge path4 1 2);
  check Alcotest.bool "mem_edge symmetric" true (Graphlib.Graph.mem_edge path4 2 1);
  check Alcotest.bool "no edge" false (Graphlib.Graph.mem_edge path4 0 3)

let test_graph_rejects_bad_edges () =
  Alcotest.check_raises "self loop" (Invalid_argument "Graph.of_edges: self-loop") (fun () ->
      ignore (Graphlib.Graph.of_edges ~n:2 [ (0, 0) ]));
  Alcotest.check_raises "duplicate" (Invalid_argument "Graph.of_edges: duplicate edge") (fun () ->
      ignore (Graphlib.Graph.of_edges ~n:2 [ (0, 1); (1, 0) ]));
  Alcotest.check_raises "out of range" (Invalid_argument "Graph.of_edges: node out of range")
    (fun () -> ignore (Graphlib.Graph.of_edges ~n:2 [ (0, 5) ]))

let test_connected_components () =
  let g = Graphlib.Graph.of_edges ~n:5 [ (0, 1); (2, 3) ] in
  let comp = Graphlib.Graph.connected_components g in
  check Alcotest.bool "0 and 1 together" true (comp.(0) = comp.(1));
  check Alcotest.bool "2 and 3 together" true (comp.(2) = comp.(3));
  check Alcotest.bool "0 and 2 apart" false (comp.(0) = comp.(2));
  check Alcotest.bool "not connected" false (Graphlib.Graph.is_connected g);
  check Alcotest.bool "path connected" true (Graphlib.Graph.is_connected path4)

let test_fold_neighbors () =
  let sum = Graphlib.Graph.fold_neighbors path4 1 ~init:0 ~f:( + ) in
  check Alcotest.int "neighbor sum" 2 sum

(* ---- Lattice ---- *)

let lattice_space =
  Param.Space.make
    [ Param.Spec.categorical "c" [ "a"; "b"; "x" ]; Param.Spec.ordinal_ints "o" [ 1; 2; 3; 4 ] ]

let test_lattice_structure () =
  let g = Graphlib.Lattice.build lattice_space in
  check Alcotest.int "node count" 12 (Graphlib.Graph.n_nodes g);
  check Alcotest.bool "connected" true (Graphlib.Graph.is_connected g);
  (* Node (c=0, o=0): categorical clique gives 2 neighbors, ordinal
     end gives 1. *)
  let rank0 = Param.Space.config_rank lattice_space [| Param.Value.Categorical 0; Param.Value.Ordinal 0 |] in
  check Alcotest.int "corner degree" 3 (Graphlib.Graph.degree g rank0);
  (* Node (c=1, o=1): 2 + 2. *)
  let mid = Param.Space.config_rank lattice_space [| Param.Value.Categorical 1; Param.Value.Ordinal 1 |] in
  check Alcotest.int "middle degree" 4 (Graphlib.Graph.degree g mid)

let test_lattice_adjacency_semantics () =
  let g = Graphlib.Lattice.build lattice_space in
  let rank c o = Param.Space.config_rank lattice_space [| Param.Value.Categorical c; Param.Value.Ordinal o |] in
  check Alcotest.bool "categorical clique edge" true (Graphlib.Graph.mem_edge g (rank 0 0) (rank 2 0));
  check Alcotest.bool "ordinal step edge" true (Graphlib.Graph.mem_edge g (rank 0 0) (rank 0 1));
  check Alcotest.bool "no ordinal jump edge" false (Graphlib.Graph.mem_edge g (rank 0 0) (rank 0 2));
  check Alcotest.bool "no diagonal edge" false (Graphlib.Graph.mem_edge g (rank 0 0) (rank 1 1))

let test_lattice_rejects_continuous () =
  let s = Param.Space.make [ Param.Spec.continuous "x" ~lo:0. ~hi:1. ] in
  Alcotest.check_raises "continuous rejected" (Invalid_argument "Lattice.build: continuous parameter")
    (fun () -> ignore (Graphlib.Lattice.build s))

(* ---- kNN ---- *)

let test_knn () =
  let configs = Param.Space.enumerate lattice_space in
  let g = Graphlib.Knn.build lattice_space configs ~k:3 in
  check Alcotest.int "knn node count" 12 (Graphlib.Graph.n_nodes g);
  (* Every node has degree >= k (symmetrization can only add). *)
  for u = 0 to 11 do
    if Graphlib.Graph.degree g u < 3 then Alcotest.failf "node %d degree < k" u
  done

let test_knn_rejects_bad_k () =
  let configs = Param.Space.enumerate lattice_space in
  Alcotest.check_raises "k too large" (Invalid_argument "Knn.build: k must be in (0, n)") (fun () ->
      ignore (Graphlib.Knn.build lattice_space configs ~k:12))

(* ---- CAMLP ---- *)

let test_camlp_beliefs_bounded () =
  let g = Graphlib.Lattice.build lattice_space in
  let labels = { Graphlib.Camlp.optimal = [| 0 |]; non_optimal = [| 11 |] } in
  let beliefs = Graphlib.Camlp.propagate g labels in
  Array.iter
    (fun b -> if b < 0. || b > 1. then Alcotest.failf "belief out of [0,1]: %f" b)
    beliefs

let test_camlp_locality () =
  (* Nodes near the optimal-labeled seed believe more strongly than
     nodes near the non-optimal seed. *)
  let n = 10 in
  let g = Graphlib.Graph.of_edges ~n (List.init (n - 1) (fun i -> (i, i + 1))) in
  let labels = { Graphlib.Camlp.optimal = [| 0 |]; non_optimal = [| 9 |] } in
  let beliefs = Graphlib.Camlp.propagate ~beta:0.5 g labels in
  check Alcotest.bool "monotone along the path" true (beliefs.(1) > beliefs.(8));
  check Alcotest.bool "optimal end higher" true (beliefs.(0) > 0.5 && beliefs.(9) < 0.5)

let test_camlp_unlabeled_neutral () =
  (* With no labels at all, every belief stays at the 0.5 prior. *)
  let g = path4 in
  let labels = { Graphlib.Camlp.optimal = [||]; non_optimal = [||] } in
  let beliefs = Graphlib.Camlp.propagate g labels in
  Array.iter (fun b -> check (Alcotest.float 1e-6) "neutral belief" 0.5 b) beliefs

let test_camlp_rejects_conflicting_labels () =
  Alcotest.check_raises "conflicting labels"
    (Invalid_argument "Camlp.propagate: node labeled both ways") (fun () ->
      ignore
        (Graphlib.Camlp.propagate path4 { Graphlib.Camlp.optimal = [| 1 |]; non_optimal = [| 1 |] }))

let test_camlp_homophily_flip () =
  (* With negative homophily (heterophily), a neighbor of an optimal
     node should believe *less* than the far end. *)
  let n = 3 in
  let g = Graphlib.Graph.of_edges ~n [ (0, 1); (1, 2) ] in
  let labels = { Graphlib.Camlp.optimal = [| 0 |]; non_optimal = [||] } in
  let homo = Graphlib.Camlp.propagate ~beta:0.5 ~homophily:1.0 g labels in
  let hetero = Graphlib.Camlp.propagate ~beta:0.5 ~homophily:(-1.0) g labels in
  check Alcotest.bool "homophily raises neighbor belief" true (homo.(1) > 0.5);
  check Alcotest.bool "heterophily lowers neighbor belief" true (hetero.(1) < 0.5)

let suite =
  let tc = Alcotest.test_case in
  ( "graphlib",
    [
      tc "graph basics" `Quick test_graph_basics;
      tc "graph rejects bad edges" `Quick test_graph_rejects_bad_edges;
      tc "connected components" `Quick test_connected_components;
      tc "fold neighbors" `Quick test_fold_neighbors;
      tc "lattice structure" `Quick test_lattice_structure;
      tc "lattice adjacency semantics" `Quick test_lattice_adjacency_semantics;
      tc "lattice rejects continuous" `Quick test_lattice_rejects_continuous;
      tc "knn" `Quick test_knn;
      tc "knn rejects bad k" `Quick test_knn_rejects_bad_k;
      tc "camlp beliefs bounded" `Quick test_camlp_beliefs_bounded;
      tc "camlp locality" `Quick test_camlp_locality;
      tc "camlp unlabeled neutral" `Quick test_camlp_unlabeled_neutral;
      tc "camlp rejects conflicts" `Quick test_camlp_rejects_conflicting_labels;
      tc "camlp homophily flip" `Quick test_camlp_homophily_flip;
    ] )
