test/test_nn.ml: Alcotest Array Nn Prng
