test/test_hpcsim.ml: Alcotest Array Dataset Float Hashtbl Hpcsim List Param Simulate
