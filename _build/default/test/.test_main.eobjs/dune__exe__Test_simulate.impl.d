test/test_simulate.ml: Alcotest Array List Printf Prng Simulate
