test/test_infer.ml: Alcotest Array Dataset Hiperbot List Param Prng
