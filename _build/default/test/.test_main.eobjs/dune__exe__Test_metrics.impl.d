test/test_metrics.ml: Alcotest Array Baselines Dataset Float Metrics Param Prng
