test/test_graphlib.ml: Alcotest Array Graphlib List Param
