test/test_integration.ml: Alcotest Array Baselines Dataset Hiperbot Hpcsim Kernels Metrics Parallel Param Prng
