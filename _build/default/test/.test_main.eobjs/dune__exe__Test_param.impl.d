test/test_param.ml: Alcotest Array Param Prng QCheck2 QCheck_alcotest
