test/test_baselines.ml: Alcotest Array Baselines Dataset Float Graphlib Param Prng
