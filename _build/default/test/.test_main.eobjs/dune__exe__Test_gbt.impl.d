test/test_gbt.ml: Alcotest Array Baselines Gbt Param Prng
