test/test_dataset.ml: Alcotest Array Dataset List Param String
