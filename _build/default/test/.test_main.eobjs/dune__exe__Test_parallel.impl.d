test/test_parallel.ml: Alcotest Array Atomic List Mutex Parallel
