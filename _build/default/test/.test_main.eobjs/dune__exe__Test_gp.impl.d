test/test_gp.ml: Alcotest Array Float Gp Linalg
