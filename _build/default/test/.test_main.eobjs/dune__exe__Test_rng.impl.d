test/test_rng.ml: Alcotest Array Float Hashtbl Int64 Prng QCheck2 QCheck_alcotest
