test/test_hiperbot.ml: Alcotest Array Float Hiperbot List Option Param Prng QCheck2 QCheck_alcotest
