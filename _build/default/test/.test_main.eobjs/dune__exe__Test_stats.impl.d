test/test_stats.ml: Alcotest Array Float Prng QCheck2 QCheck_alcotest Stats
