test/test_linalg.ml: Alcotest Array Float Linalg Prng QCheck2 QCheck_alcotest
