test/test_kernels.ml: Alcotest Array Float Kernels List Parallel Param Prng
