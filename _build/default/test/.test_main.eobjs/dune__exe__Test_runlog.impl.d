test/test_runlog.ml: Alcotest Array Dataset Filename Fun Hiperbot Param Prng Sys
