(* Tests for the Gaussian-process regression substrate. *)

let check = Alcotest.check

let test_kernel_values () =
  let k = Gp.Kernel.rbf ~lengthscale:1. ~variance:2. () in
  check (Alcotest.float 1e-9) "k(x,x) = variance" 2. (Gp.Kernel.eval k [| 1.; 2. |] [| 1.; 2. |]);
  check Alcotest.bool "decays with distance" true
    (Gp.Kernel.eval k [| 0. |] [| 1. |] > Gp.Kernel.eval k [| 0. |] [| 3. |]);
  let m = Gp.Kernel.matern52 () in
  check (Alcotest.float 1e-9) "matern self" 1. (Gp.Kernel.eval m [| 0. |] [| 0. |])

let test_kernel_validation () =
  Alcotest.check_raises "bad lengthscale" (Invalid_argument "Kernel: non-positive lengthscale")
    (fun () -> ignore (Gp.Kernel.rbf ~lengthscale:0. ()));
  Alcotest.check_raises "bad variance" (Invalid_argument "Kernel: non-positive variance") (fun () ->
      ignore (Gp.Kernel.rbf ~variance:(-1.) ()))

let test_gram_symmetric_psd_diag () =
  let k = Gp.Kernel.rbf () in
  let pts = [| [| 0. |]; [| 1. |]; [| 2.5 |] |] in
  let g = Gp.Kernel.gram k pts in
  for i = 0 to 2 do
    check (Alcotest.float 1e-12) "unit diagonal" 1. (Linalg.Mat.get g i i);
    for j = 0 to 2 do
      check (Alcotest.float 1e-12) "symmetric" (Linalg.Mat.get g i j) (Linalg.Mat.get g j i)
    done
  done

let train_1d () =
  let inputs = [| [| 0. |]; [| 1. |]; [| 2. |]; [| 3. |]; [| 4. |] |] in
  let targets = Array.map (fun x -> sin x.(0)) inputs in
  Gp.Gpr.fit ~kernel:(Gp.Kernel.rbf ~lengthscale:1. ()) ~noise:1e-6 ~inputs ~targets ()

let test_gp_interpolates () =
  let gp = train_1d () in
  check Alcotest.int "n_train" 5 (Gp.Gpr.n_train gp);
  for i = 0 to 4 do
    let x = [| float_of_int i |] in
    let mean, variance = Gp.Gpr.predict gp x in
    check (Alcotest.float 1e-2) "mean interpolates" (sin (float_of_int i)) mean;
    check Alcotest.bool "variance tiny at training points" true (variance < 1e-3)
  done

let test_gp_uncertainty_grows () =
  let gp = train_1d () in
  let _, v_near = Gp.Gpr.predict gp [| 2. |] in
  let _, v_far = Gp.Gpr.predict gp [| 10. |] in
  check Alcotest.bool "variance grows away from data" true (v_far > v_near);
  check Alcotest.bool "variance non-negative" true (v_near >= 0.)

let test_gp_ei () =
  let gp = train_1d () in
  (* EI against an incumbent equal to the global minimum of the data:
     non-negative everywhere, larger in unexplored regions. *)
  let best = -1. in
  let ei_far = Gp.Gpr.expected_improvement gp ~best [| 10. |] in
  let ei_at_known = Gp.Gpr.expected_improvement gp ~best [| 0. |] in
  check Alcotest.bool "ei non-negative" true (ei_far >= 0. && ei_at_known >= 0.);
  check Alcotest.bool "ei larger in unexplored region" true (ei_far > ei_at_known)

let test_gp_log_marginal_finite () =
  let gp = train_1d () in
  check Alcotest.bool "finite log marginal" true (Float.is_finite (Gp.Gpr.log_marginal_likelihood gp))

let test_gp_validation () =
  Alcotest.check_raises "empty data" (Invalid_argument "Gpr.fit: empty data") (fun () ->
      ignore (Gp.Gpr.fit ~inputs:[||] ~targets:[||] ()));
  Alcotest.check_raises "mismatch" (Invalid_argument "Gpr.fit: input/target length mismatch")
    (fun () -> ignore (Gp.Gpr.fit ~inputs:[| [| 0. |] |] ~targets:[| 1.; 2. |] ()))

let test_gp_constant_targets () =
  (* Degenerate data (zero variance) must not crash. *)
  let inputs = [| [| 0. |]; [| 1. |] |] in
  let gp = Gp.Gpr.fit ~inputs ~targets:[| 3.; 3. |] () in
  let mean, _ = Gp.Gpr.predict gp [| 0.5 |] in
  check (Alcotest.float 0.2) "predicts the constant" 3. mean

let suite =
  let tc = Alcotest.test_case in
  ( "gp",
    [
      tc "kernel values" `Quick test_kernel_values;
      tc "kernel validation" `Quick test_kernel_validation;
      tc "gram symmetric" `Quick test_gram_symmetric_psd_diag;
      tc "gp interpolates" `Quick test_gp_interpolates;
      tc "gp uncertainty grows" `Quick test_gp_uncertainty_grows;
      tc "gp expected improvement" `Quick test_gp_ei;
      tc "gp log marginal finite" `Quick test_gp_log_marginal_finite;
      tc "gp validation" `Quick test_gp_validation;
      tc "gp constant targets" `Quick test_gp_constant_targets;
    ] )
