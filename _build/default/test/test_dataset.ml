(* Unit tests for the dataset library. *)

let check = Alcotest.check
let feq = Alcotest.float 1e-9

let space =
  Param.Space.make
    [ Param.Spec.categorical "a" [ "x"; "y" ]; Param.Spec.ordinal_ints "b" [ 1; 2; 3 ] ]

(* Objective: index-based so every row value is distinct and known. *)
let objective config =
  let a = Param.Value.to_index config.(0) in
  let b = Param.Value.to_index config.(1) in
  float_of_int ((a * 3) + b + 1)

let table = Dataset.Table.create ~name:"toy" ~space ~objective

let test_size_and_lookup () =
  check Alcotest.int "size" 6 (Dataset.Table.size table);
  check Alcotest.string "name" "toy" (Dataset.Table.name table);
  let c = [| Param.Value.Categorical 1; Param.Value.Ordinal 2 |] in
  check feq "lookup" 6. (Dataset.Table.lookup table c);
  check Alcotest.bool "mem" true (Dataset.Table.mem table c);
  check feq "objective_fn" 6. (Dataset.Table.objective_fn table c)

let test_lookup_missing () =
  let other = Param.Space.make [ Param.Spec.ordinal_ints "z" [ 0 ] ] in
  let c = Param.Space.config_of_rank other 0 in
  Alcotest.check_raises "missing config" Not_found (fun () ->
      ignore (Dataset.Table.lookup table c))

let test_best () =
  let config, value = Dataset.Table.best table in
  check feq "best value" 1. value;
  check Alcotest.bool "best config" true
    (Param.Config.equal config [| Param.Value.Categorical 0; Param.Value.Ordinal 0 |]);
  check feq "best_value" 1. (Dataset.Table.best_value table)

let test_good_sets () =
  (* values are 1..6 *)
  let test_pct, n_pct = Dataset.Table.good_set_percentile table 0.34 in
  check Alcotest.bool "percentile includes best" true
    (test_pct [| Param.Value.Categorical 0; Param.Value.Ordinal 0 |]);
  check Alcotest.bool "count plausible" true (n_pct >= 2 && n_pct <= 3);
  let test_tol, n_tol = Dataset.Table.good_set_tolerance table 1.0 in
  (* within 2x of best=1: values 1 and 2 *)
  check Alcotest.int "tolerance count" 2 n_tol;
  check Alcotest.bool "tolerance membership" true
    (test_tol [| Param.Value.Categorical 0; Param.Value.Ordinal 1 |]);
  check Alcotest.bool "tolerance non-membership" false
    (test_tol [| Param.Value.Categorical 1; Param.Value.Ordinal 2 |])

let test_count_within () =
  check Alcotest.int "count within 3.5" 3 (Dataset.Table.count_within table 3.5)

let test_csv_roundtrip () =
  let csv = Dataset.Table.to_csv table in
  let parsed = Dataset.Table.of_csv ~name:"copy" ~space csv in
  check Alcotest.int "roundtrip size" (Dataset.Table.size table) (Dataset.Table.size parsed);
  for i = 0 to Dataset.Table.size table - 1 do
    let c = Dataset.Table.config table i in
    check feq "roundtrip objective" (Dataset.Table.lookup table c) (Dataset.Table.lookup parsed c)
  done

let test_csv_header () =
  let csv = Dataset.Table.to_csv table in
  let first_line = List.hd (String.split_on_char '\n' csv) in
  check Alcotest.string "header" "a,b,objective" first_line

let test_of_rows_rejects_duplicates () =
  let c = [| Param.Value.Categorical 0; Param.Value.Ordinal 0 |] in
  Alcotest.check_raises "duplicate rows"
    (Invalid_argument "Table dup: duplicate configuration at row 1") (fun () ->
      ignore (Dataset.Table.of_rows ~name:"dup" ~space [| (c, 1.); (Array.copy c, 2.) |]))

let test_of_rows_rejects_invalid () =
  let c = [| Param.Value.Categorical 5; Param.Value.Ordinal 0 |] in
  Alcotest.check_raises "invalid row"
    (Invalid_argument "Table bad: invalid configuration at row 0") (fun () ->
      ignore (Dataset.Table.of_rows ~name:"bad" ~space [| (c, 1.) |]))

let test_objectives_copy () =
  let ys = Dataset.Table.objectives table in
  ys.(0) <- 999.;
  check feq "objectives returns a copy" 1. (Dataset.Table.objective table 0)

let suite =
  let tc = Alcotest.test_case in
  ( "dataset",
    [
      tc "size and lookup" `Quick test_size_and_lookup;
      tc "lookup missing" `Quick test_lookup_missing;
      tc "best" `Quick test_best;
      tc "good sets" `Quick test_good_sets;
      tc "count within" `Quick test_count_within;
      tc "csv roundtrip" `Quick test_csv_roundtrip;
      tc "csv header" `Quick test_csv_header;
      tc "of_rows rejects duplicates" `Quick test_of_rows_rejects_duplicates;
      tc "of_rows rejects invalid" `Quick test_of_rows_rejects_invalid;
      tc "objectives returns a copy" `Quick test_objectives_copy;
    ] )
