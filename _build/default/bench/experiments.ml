(* One function per paper artifact (see DESIGN.md's experiment index).
   Each prints the rows/series of the corresponding table or figure;
   EXPERIMENTS.md records these outputs against the paper's numbers. *)

let default_ell = 0.05 (* "good" percentile for the Recall metric of Figs. 2-6 *)

(* ---------- Figure 1: toy example ---------- *)

(* A one-parameter continuous objective shaped like the paper's toy:
   a broad basin with its minimum near x = 2 on [0, 5]. *)
let toy_objective config =
  let x = Param.Value.to_float_raw config.(0) in
  (20. *. ((x -. 2.) ** 2.)) -. 25. +. (8. *. sin (3. *. x))

let fig1 ~reps:_ () =
  Harness.section "Figure 1: toy example (1-D continuous objective)";
  let space = Param.Space.make [ Param.Spec.continuous "x" ~lo:0. ~hi:5. ] in
  let rng = Prng.Rng.create 7 in
  let options =
    {
      Hiperbot.Tuner.default_options with
      n_init = 10;
      strategy = Hiperbot.Strategy.Proposal { n_candidates = 64 };
    }
  in
  let stages = [ (1, "after iteration 1"); (9, "after iteration 10") ] in
  let snapshot budget label =
    let rng = Prng.Rng.copy rng in
    let result = Hiperbot.Tuner.run ~options ~rng ~space ~objective:toy_objective ~budget:(10 + budget) () in
    Harness.subsection (Printf.sprintf "Samples %s" label);
    Printf.printf "best f=%.3f at x=%.3f\n" result.Hiperbot.Tuner.best_value
      (Param.Value.to_float_raw result.Hiperbot.Tuner.best_config.(0));
    (* Histogram of sample positions in 10 bins over [0, 5]. *)
    let bins = Array.make 10 0 in
    Array.iter
      (fun (c, _) ->
        let x = Param.Value.to_float_raw c.(0) in
        let b = Stdlib.min 9 (int_of_float (x /. 0.5)) in
        bins.(b) <- bins.(b) + 1)
      result.Hiperbot.Tuner.history;
    Array.iteri
      (fun i n -> Printf.printf "  x in [%.1f,%.1f): %s (%d)\n" (0.5 *. float_of_int i) (0.5 *. float_of_int (i + 1)) (String.make n '*') n)
      bins;
    result
  in
  let result = snapshot 10 "(densities from 10 random + 10 guided samples)" in
  (match result.Hiperbot.Tuner.final_surrogate with
  | None -> ()
  | Some s ->
      Harness.subsection "Surrogate densities and expected improvement on a grid";
      Printf.printf "%8s %12s %12s %12s\n" "x" "pg(x)" "pb(x)" "EI(x)";
      for i = 0 to 20 do
        let x = 0.25 *. float_of_int i in
        let c = [| Param.Value.Continuous (Stdlib.min 5. x) |] in
        Printf.printf "%8.2f %12.4f %12.4f %12.4f\n" x (Hiperbot.Surrogate.good_pdf s c)
          (Hiperbot.Surrogate.bad_pdf s c)
          (Hiperbot.Surrogate.expected_improvement s c)
      done);
  List.iter (fun (extra, label) -> ignore (snapshot (10 + extra) label)) stages

(* ---------- Figures 2-6: configuration selection ---------- *)

let selection_figure ~reps ~dataset ~sizes ~title =
  Harness.section title;
  let table = (Hpcsim.Registry.find dataset).Hpcsim.Registry.table () in
  let tuners =
    [ Harness.random_tuner table; Harness.geist_tuner table; Harness.hiperbot_tuner table ]
  in
  ignore (Harness.selection_experiment ~reps ~ell:default_ell ~sizes table tuners)

let fig2 ~reps () =
  selection_figure ~reps ~dataset:"kripke"
    ~sizes:[| 32; 64; 96; 128; 160; 192 |]
    ~title:"Figure 2: Kripke execution time"

let fig3 ~reps () =
  selection_figure ~reps ~dataset:"kripke_energy"
    ~sizes:[| 39; 139; 239; 339; 439 |]
    ~title:"Figure 3: Kripke energy under power capping"

let fig4 ~reps () =
  selection_figure ~reps ~dataset:"hypre"
    ~sizes:[| 41; 141; 241; 341; 441 |]
    ~title:"Figure 4: HYPRE new_ij"

let fig5 ~reps () =
  selection_figure ~reps ~dataset:"lulesh"
    ~sizes:[| 46; 146; 246; 346; 446 |]
    ~title:"Figure 5: LULESH compiler flags"

let fig6 ~reps () =
  selection_figure ~reps ~dataset:"openatom"
    ~sizes:[| 39; 139; 239; 339; 439 |]
    ~title:"Figure 6: OpenAtom"

(* ---------- Figure 7: hyperparameter sensitivity ---------- *)

let sensitivity_datasets = [ "kripke"; "lulesh"; "hypre"; "openatom"; "kripke_energy" ]
let sensitivity_budget = 150

let sensitivity ~reps ~title ~values ~value_label ~options_of =
  Harness.section title;
  Printf.printf "ratio = best selected / exhaustive best (1.0 = optimal); budget=%d reps=%d\n%!"
    sensitivity_budget reps;
  Printf.printf "%-14s" value_label;
  List.iter (fun name -> Printf.printf " %14s" name) sensitivity_datasets;
  Printf.printf "\n";
  List.iter
    (fun v ->
      Printf.printf "%-14.2f" v;
      List.iter
        (fun name ->
          let table = (Hpcsim.Registry.find name).Hpcsim.Registry.table () in
          let space = Dataset.Table.space table in
          let objective = Dataset.Table.objective_fn table in
          let exhaustive = Dataset.Table.best_value table in
          let summary =
            Metrics.Runner.replicate ~reps ~base_seed:2000 (fun ~rng ->
                let r =
                  Hiperbot.Tuner.run ~options:(options_of v) ~rng ~space ~objective
                    ~budget:sensitivity_budget ()
                in
                r.Hiperbot.Tuner.best_value /. exhaustive)
          in
          Printf.printf " %8.4f+-%4.2f" summary.Metrics.Runner.mean summary.Metrics.Runner.std)
        sensitivity_datasets;
      Printf.printf "\n%!")
    values

let fig7a ~reps () =
  sensitivity ~reps ~title:"Figure 7a: sensitivity to the initial sample size"
    ~values:[ 10.; 20.; 40.; 60.; 80.; 100. ]
    ~value_label:"n_init" ~options_of:(fun v ->
      { Hiperbot.Tuner.default_options with n_init = int_of_float v })

let fig7b ~reps () =
  sensitivity ~reps ~title:"Figure 7b: sensitivity to the quantile threshold"
    ~values:[ 0.01; 0.05; 0.1; 0.2; 0.3; 0.4; 0.5 ]
    ~value_label:"alpha" ~options_of:(fun v ->
      {
        Hiperbot.Tuner.default_options with
        surrogate = { Hiperbot.Surrogate.default_options with alpha = v };
      })

(* ---------- Table I: parameter importance ---------- *)

let tab1 ~reps () =
  Harness.section "Table I: relative ranking of parameters (JS divergence)";
  Printf.printf
    "10%%-sample column: surrogate fitted on a random 10%% subset (first of %d seeds shown);\n" reps;
  Printf.printf "all-samples column: surrogate fitted on the exhaustive dataset.\n%!";
  List.iter
    (fun name ->
      let table = (Hpcsim.Registry.find name).Hpcsim.Registry.table () in
      let space = Dataset.Table.space table in
      let all_obs =
        Array.init (Dataset.Table.size table) (fun i ->
            (Dataset.Table.config table i, Dataset.Table.objective table i))
      in
      let full = Hiperbot.Importance.of_observations space all_obs in
      let n_sub = Stdlib.max 20 (Dataset.Table.size table / 10) in
      let sampled_ranking ~rng =
        let idx = Prng.Rng.sample_without_replacement rng n_sub (Dataset.Table.size table) in
        Hiperbot.Importance.of_observations space (Array.map (fun i -> all_obs.(i)) idx)
      in
      let first_sample = sampled_ranking ~rng:(Prng.Rng.create 3000) in
      let agreement =
        Metrics.Runner.replicate ~reps ~base_seed:3000 (fun ~rng ->
            Hiperbot.Importance.spearman (sampled_ranking ~rng) full)
      in
      Harness.subsection name;
      Printf.printf "10%% samples: %s\n" (Hiperbot.Importance.to_string first_sample);
      Printf.printf "all samples: %s\n" (Hiperbot.Importance.to_string full);
      Printf.printf "Spearman(10%% vs all) over %d seeds: %.3f+-%.3f\n%!" reps
        agreement.Metrics.Runner.mean agreement.Metrics.Runner.std)
    sensitivity_datasets

(* ---------- Figure 8: transfer learning ---------- *)

let transfer_figure ~reps ~title ~src_name ~trgt_name =
  Harness.section title;
  let src = (Hpcsim.Registry.find src_name).Hpcsim.Registry.table () in
  let trgt = (Hpcsim.Registry.find trgt_name).Hpcsim.Registry.table () in
  let space = Dataset.Table.space trgt in
  let objective = Dataset.Table.objective_fn trgt in
  let source =
    Array.init (Dataset.Table.size src) (fun i ->
        (Dataset.Table.config src i, Dataset.Table.objective src i))
  in
  (* The paper selects 1% of the target space plus 100 more. *)
  let budget = (Dataset.Table.size trgt / 100) + 100 in
  Printf.printf "source=%s (%d rows)  target=%s (%d rows)  budget=%d  reps=%d\n%!" src_name
    (Dataset.Table.size src) (Dataset.Table.name trgt) (Dataset.Table.size trgt) budget reps;
  let gammas = [ 0.05; 0.10; 0.15; 0.20 ] in
  let methods =
    [
      ( "PerfNet",
        fun ~rng ~budget ->
          Baselines.Perfnet.run ~rng ~space ~source ~objective ~budget () );
      ( "HiPerBOt",
        fun ~rng ~budget ->
          Baselines.Outcome.of_tuner_result
            (Hiperbot.Transfer.run ~rng ~space ~source ~objective ~budget ()) );
    ]
  in
  Printf.printf "%-22s" "threshold (good cases)";
  List.iter (fun (label, _) -> Printf.printf " %18s" label) methods;
  Printf.printf "\n";
  (* One run per repetition; all tolerance recalls are computed from
     the same evaluation history (identical to re-running with the
     same seed, at a quarter of the cost). *)
  let good_sets = List.map (fun gamma -> (gamma, Metrics.Recall.tolerance_good_set trgt gamma)) gammas in
  let per_method =
    List.map
      (fun (label, run) ->
        let accs = List.map (fun (gamma, good) -> (gamma, good, Stats.Running.create ())) good_sets in
        for r = 0 to reps - 1 do
          let rng = Prng.Rng.create (4000 + r) in
          let outcome = run ~rng ~budget in
          List.iter
            (fun (_, good, acc) ->
              Stats.Running.add acc (Metrics.Recall.recall good outcome.Baselines.Outcome.history))
            accs
        done;
        let recalls =
          List.map
            (fun (gamma, _, acc) ->
              ( gamma,
                { Metrics.Runner.mean = Stats.Running.mean acc; std = Stats.Running.stddev acc } ))
            accs
        in
        (label, recalls))
      methods
  in
  List.iteri
    (fun i gamma ->
      let good = Metrics.Recall.tolerance_good_set trgt gamma in
      Printf.printf "%4.0f%% (%5d)          " (100. *. gamma) good.Metrics.Recall.count;
      List.iter
        (fun (_, recalls) ->
          let _, s = List.nth recalls i in
          Printf.printf " %10.3f+-%5.3f" s.Metrics.Runner.mean s.Metrics.Runner.std)
        per_method;
      Printf.printf "\n%!")
    gammas

let fig8a ~reps () =
  transfer_figure ~reps ~title:"Figure 8a: Kripke transfer learning (16 -> 64 nodes)"
    ~src_name:"kripke_src" ~trgt_name:"kripke_trgt"

let fig8b ~reps () =
  transfer_figure ~reps ~title:"Figure 8b: HYPRE transfer learning (16 -> 64 nodes)"
    ~src_name:"hypre_src" ~trgt_name:"hypre_trgt"

(* ---------- Ablations (DESIGN.md design-choice benches) ---------- *)

let ablation_strategy ~reps () =
  Harness.section "Ablation: Ranking vs Proposal selection (Kripke)";
  let table = (Hpcsim.Registry.find "kripke").Hpcsim.Registry.table () in
  let tuners =
    [
      Harness.hiperbot_tuner ~label:"Ranking" table;
      Harness.hiperbot_tuner ~label:"Proposal(64)"
        ~options:
          {
            Hiperbot.Tuner.default_options with
            strategy = Hiperbot.Strategy.Proposal { n_candidates = 64 };
          }
        table;
      Harness.hiperbot_tuner ~label:"Proposal(512)"
        ~options:
          {
            Hiperbot.Tuner.default_options with
            strategy = Hiperbot.Strategy.Proposal { n_candidates = 512 };
          }
        table;
    ]
  in
  ignore
    (Harness.selection_experiment ~reps ~ell:default_ell ~sizes:[| 32; 96; 192 |] table tuners)

let ablation_smoothing ~reps () =
  Harness.section "Ablation: histogram smoothing constant (Kripke)";
  let table = (Hpcsim.Registry.find "kripke").Hpcsim.Registry.table () in
  let tuners =
    List.map
      (fun s ->
        Harness.hiperbot_tuner
          ~label:(Printf.sprintf "smooth=%.2f" s)
          ~options:
            {
              Hiperbot.Tuner.default_options with
              surrogate =
                {
                  Hiperbot.Surrogate.default_options with
                  density = { Hiperbot.Density.default_options with smoothing = s };
                };
            }
          table)
      [ 0.1; 0.5; 1.0; 2.0 ]
  in
  ignore
    (Harness.selection_experiment ~reps ~ell:default_ell ~sizes:[| 32; 96; 192 |] table tuners)

let ablation_bandwidth ~reps () =
  Harness.section "Ablation: KDE bandwidth rule (continuous toy objective)";
  let space = Param.Space.make [ Param.Spec.continuous "x" ~lo:0. ~hi:5. ] in
  let rules =
    [
      ("fixed 5%", Hiperbot.Density.Fixed_fraction 0.05);
      ("fixed 10%", Hiperbot.Density.Fixed_fraction 0.1);
      ("fixed 25%", Hiperbot.Density.Fixed_fraction 0.25);
      ("Silverman", Hiperbot.Density.Silverman);
    ]
  in
  Printf.printf "budget=60 (10 init), best objective found, mean+-std over %d reps\n" reps;
  List.iter
    (fun (label, bandwidth) ->
      let options =
        {
          Hiperbot.Tuner.default_options with
          n_init = 10;
          strategy = Hiperbot.Strategy.Proposal { n_candidates = 64 };
          surrogate =
            {
              Hiperbot.Surrogate.default_options with
              density = { Hiperbot.Density.default_options with bandwidth };
            };
        }
      in
      let s =
        Metrics.Runner.replicate ~reps ~base_seed:5000 (fun ~rng ->
            (Hiperbot.Tuner.run ~options ~rng ~space ~objective:toy_objective ~budget:60 ())
              .Hiperbot.Tuner.best_value)
      in
      Printf.printf "%-12s %10.4f+-%6.4f\n%!" label s.Metrics.Runner.mean s.Metrics.Runner.std)
    rules

let ablation_transfer_weight ~reps () =
  Harness.section "Ablation: transfer prior weight w (Kripke 16 -> 64 nodes)";
  let src = (Hpcsim.Registry.find "kripke_src").Hpcsim.Registry.table () in
  let trgt = (Hpcsim.Registry.find "kripke_trgt").Hpcsim.Registry.table () in
  let space = Dataset.Table.space trgt in
  let objective = Dataset.Table.objective_fn trgt in
  let source =
    Array.init (Dataset.Table.size src) (fun i ->
        (Dataset.Table.config src i, Dataset.Table.objective src i))
  in
  let good = Metrics.Recall.tolerance_good_set trgt 0.10 in
  let budget = (Dataset.Table.size trgt / 100) + 100 in
  Printf.printf "budget=%d, recall at 10%% tolerance (good=%d), mean+-std over %d reps\n" budget
    good.Metrics.Recall.count reps;
  List.iter
    (fun weight ->
      let s =
        Metrics.Runner.replicate ~reps ~base_seed:6000 (fun ~rng ->
            let r =
              if weight = 0. then Hiperbot.Tuner.run ~rng ~space ~objective ~budget ()
              else Hiperbot.Transfer.run ~weight ~rng ~space ~source ~objective ~budget ()
            in
            Metrics.Recall.recall good r.Hiperbot.Tuner.history)
      in
      Printf.printf "w=%-6.2f %8.3f+-%5.3f\n%!" weight s.Metrics.Runner.mean s.Metrics.Runner.std)
    [ 0.; 0.1; 0.5; 1.0; 2.0; 5.0 ]

let ablation_surrogates ~reps () =
  Harness.section "Ablation: surrogate model family (Kripke, budget 150)";
  let table = (Hpcsim.Registry.find "kripke").Hpcsim.Registry.table () in
  let tuners = [ Harness.gp_tuner table; Harness.gbt_tuner table; Harness.hiperbot_tuner table ] in
  ignore
    (Harness.selection_experiment ~reps ~ell:default_ell ~sizes:[| 50; 100; 150 |] table tuners)

let ablation_batch ~reps () =
  Harness.section "Ablation: batch size (one refit per batch, Kripke)";
  let table = (Hpcsim.Registry.find "kripke").Hpcsim.Registry.table () in
  let tuners =
    List.map
      (fun batch_size ->
        Harness.hiperbot_tuner
          ~label:(Printf.sprintf "batch=%d" batch_size)
          ~options:{ Hiperbot.Tuner.default_options with batch_size }
          table)
      [ 1; 5; 10; 20 ]
  in
  ignore
    (Harness.selection_experiment ~reps ~ell:default_ell ~sizes:[| 64; 128; 192 |] table tuners)

let ablation_early_stop ~reps () =
  Harness.section "Ablation: early-stop patience (Kripke, budget cap 192)";
  let table = (Hpcsim.Registry.find "kripke").Hpcsim.Registry.table () in
  let space = Dataset.Table.space table in
  let objective = Dataset.Table.objective_fn table in
  Printf.printf "%-12s %16s %16s %12s\n" "patience" "best (mean+-std)" "evals used" "stopped%";
  List.iter
    (fun patience ->
      let bests = Stats.Running.create () in
      let evals = Stats.Running.create () in
      let stopped = ref 0 in
      for r = 0 to reps - 1 do
        let rng = Prng.Rng.create (7000 + r) in
        let options = { Hiperbot.Tuner.default_options with early_stop = patience } in
        let result = Hiperbot.Tuner.run ~options ~rng ~space ~objective ~budget:192 () in
        Stats.Running.add bests result.Hiperbot.Tuner.best_value;
        Stats.Running.add evals (float_of_int (Array.length result.Hiperbot.Tuner.history));
        if result.Hiperbot.Tuner.stopped_early then incr stopped
      done;
      Printf.printf "%-12s %8.3f+-%5.3f %10.1f       %6.0f%%\n%!"
        (match patience with None -> "none" | Some k -> string_of_int k)
        (Stats.Running.mean bests) (Stats.Running.stddev bests) (Stats.Running.mean evals)
        (100. *. float_of_int !stopped /. float_of_int reps))
    [ None; Some 20; Some 50; Some 100 ]

(* ---------- registry ---------- *)

type entry = { id : string; describe : string; run : reps:int -> unit -> unit }

let all =
  [
    { id = "fig1"; describe = "toy example (paper Fig. 1)"; run = fig1 };
    { id = "fig2"; describe = "Kripke exec selection (Fig. 2)"; run = fig2 };
    { id = "fig3"; describe = "Kripke energy selection (Fig. 3)"; run = fig3 };
    { id = "fig4"; describe = "HYPRE selection (Fig. 4)"; run = fig4 };
    { id = "fig5"; describe = "LULESH selection (Fig. 5)"; run = fig5 };
    { id = "fig6"; describe = "OpenAtom selection (Fig. 6)"; run = fig6 };
    { id = "fig7a"; describe = "init-sample sensitivity (Fig. 7a)"; run = fig7a };
    { id = "fig7b"; describe = "threshold sensitivity (Fig. 7b)"; run = fig7b };
    { id = "tab1"; describe = "parameter importance (Table I)"; run = tab1 };
    { id = "fig8a"; describe = "Kripke transfer (Fig. 8a)"; run = fig8a };
    { id = "fig8b"; describe = "HYPRE transfer (Fig. 8b)"; run = fig8b };
    { id = "ablation_strategy"; describe = "Ranking vs Proposal"; run = ablation_strategy };
    { id = "ablation_smoothing"; describe = "histogram smoothing"; run = ablation_smoothing };
    { id = "ablation_bandwidth"; describe = "KDE bandwidth rule"; run = ablation_bandwidth };
    {
      id = "ablation_transfer_weight";
      describe = "transfer prior weight";
      run = ablation_transfer_weight;
    };
    { id = "ablation_surrogates"; describe = "TPE vs GP-EI vs GBT surrogates"; run = ablation_surrogates };
    { id = "ablation_batch"; describe = "batch selection size"; run = ablation_batch };
    { id = "ablation_early_stop"; describe = "early-stop patience"; run = ablation_early_stop };
  ]
