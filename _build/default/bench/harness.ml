(* Shared machinery for the experiment regenerators: method wrappers
   with a common signature, table printers, and the selection-
   experiment runner used by Figures 2-6. *)

type tuner = {
  label : string;
  run : rng:Prng.Rng.t -> budget:int -> Baselines.Outcome.t;
}

let hiperbot_tuner ?(options = Hiperbot.Tuner.default_options) ?(label = "HiPerBOt") table =
  let space = Dataset.Table.space table in
  let objective = Dataset.Table.objective_fn table in
  {
    label;
    run =
      (fun ~rng ~budget ->
        Baselines.Outcome.of_tuner_result
          (Hiperbot.Tuner.run ~options ~rng ~space ~objective ~budget ()));
  }

let random_tuner table =
  let space = Dataset.Table.space table in
  let objective = Dataset.Table.objective_fn table in
  { label = "Random"; run = (fun ~rng ~budget -> Baselines.Random_search.run ~rng ~space ~objective ~budget ()) }

let geist_tuner ?(options = Baselines.Geist.default_options) table =
  let space = Dataset.Table.space table in
  let objective = Dataset.Table.objective_fn table in
  (* The lattice graph depends only on the space: build it once and
     share it across repetitions and sample sizes. *)
  let graph = lazy (Graphlib.Lattice.build space) in
  {
    label = "GEIST";
    run =
      (fun ~rng ~budget ->
        Baselines.Geist.run ~options ~graph:(Lazy.force graph) ~rng ~space ~objective ~budget ());
  }

let gbt_tuner ?(options = Baselines.Gbt_tuner.default_options) table =
  let space = Dataset.Table.space table in
  let objective = Dataset.Table.objective_fn table in
  { label = "GBT"; run = (fun ~rng ~budget -> Baselines.Gbt_tuner.run ~options ~rng ~space ~objective ~budget ()) }

let gp_tuner ?(options = Baselines.Gp_tuner.default_options) table =
  let space = Dataset.Table.space table in
  let objective = Dataset.Table.objective_fn table in
  { label = "GP-EI"; run = (fun ~rng ~budget -> Baselines.Gp_tuner.run ~options ~rng ~space ~objective ~budget ()) }

let section title =
  Printf.printf "\n=== %s ===\n%!" title

let subsection title = Printf.printf "\n--- %s ---\n%!" title

let percent_of_space table n = 100. *. float_of_int n /. float_of_int (Dataset.Table.size table)

(* Figures 2-6: for one dataset, sweep sample sizes for every method
   and print the best-configuration and Recall series (mean +/- std
   over repetitions), plus the exhaustive-best reference line. *)
let selection_experiment ~reps ~ell ~sizes table tuners =
  let good = Metrics.Recall.percentile_good_set table ell in
  let exhaustive = Dataset.Table.best_value table in
  Printf.printf "dataset=%s size=%d exhaustive_best=%.4g good(l=%.0f%%)=%d reps=%d\n%!"
    (Dataset.Table.name table) (Dataset.Table.size table) exhaustive (100. *. ell)
    good.Metrics.Recall.count reps;
  let detailed =
    List.map
      (fun tuner ->
        let d =
          Metrics.Runner.sweep_detailed ~reps ~base_seed:1000 ~sample_sizes:sizes ~good
            ~run:tuner.run
        in
        (tuner.label, d))
      tuners
  in
  let results = List.map (fun (label, d) -> (label, d.Metrics.Runner.points)) detailed in
  subsection "Best configuration found (mean+-std)";
  Printf.printf "%-18s" "samples (%space)";
  List.iter (fun (label, _) -> Printf.printf " %22s" label) results;
  Printf.printf " %12s\n" "Exhaustive";
  Array.iteri
    (fun i size ->
      Printf.printf "%6d (%5.1f%%)   " size (percent_of_space table size);
      List.iter
        (fun (_, points) ->
          let p = points.(i) in
          Printf.printf " %12.4g +-%7.2g" p.Metrics.Runner.best_mean p.Metrics.Runner.best_std)
        results;
      Printf.printf " %12.4g\n" exhaustive)
    sizes;
  subsection "Recall (mean+-std)";
  Printf.printf "%-18s" "samples (%space)";
  List.iter (fun (label, _) -> Printf.printf " %22s" label) results;
  Printf.printf "\n";
  Array.iteri
    (fun i size ->
      Printf.printf "%6d (%5.1f%%)   " size (percent_of_space table size);
      List.iter
        (fun (_, points) ->
          let p = points.(i) in
          Printf.printf " %12.3f +-%7.3f" p.Metrics.Runner.recall_mean p.Metrics.Runner.recall_std)
        results;
      Printf.printf "\n")
    sizes;
  (* Paired significance of each method against the last one (the
     repository's HiPerBOt by convention) at the largest sample
     size: repetitions share seeds, so differences pair by seed. *)
  (match List.rev detailed with
  | (ref_label, ref_d) :: others when reps >= 3 ->
      subsection
        (Printf.sprintf "Paired bootstrap (95%%) vs %s at %d samples" ref_label
           sizes.(Array.length sizes - 1));
      let rng = Prng.Rng.create 424242 in
      List.iter
        (fun (label, d) ->
          let report metric a b =
            let ci = Stats.Bootstrap.paired_diff_ci ~rng a b in
            Printf.printf "  %s - %s (%s): %+.4g [%+.4g, %+.4g]%s\n" label ref_label metric
              ci.Stats.Bootstrap.point ci.Stats.Bootstrap.lo ci.Stats.Bootstrap.hi
              (if Stats.Bootstrap.significant ci then " *" else "")
          in
          report "best" d.Metrics.Runner.final_bests ref_d.Metrics.Runner.final_bests;
          report "recall" d.Metrics.Runner.final_recalls ref_d.Metrics.Runner.final_recalls)
        (List.rev others)
  | _ -> ());
  results
