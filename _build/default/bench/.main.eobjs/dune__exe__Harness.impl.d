bench/harness.ml: Array Baselines Dataset Graphlib Hiperbot Lazy List Metrics Printf Prng Stats
