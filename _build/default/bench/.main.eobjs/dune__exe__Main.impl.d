bench/main.ml: Arg Experiments List Micro Printf
