bench/main.mli:
