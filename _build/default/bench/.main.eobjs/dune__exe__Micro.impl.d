bench/micro.ml: Analyze Array Bechamel Benchmark Dataset Float Graphlib Harness Hashtbl Hiperbot Hpcsim Instance List Measure Param Printf Prng Simulate Staged Sys Test Time Toolkit
