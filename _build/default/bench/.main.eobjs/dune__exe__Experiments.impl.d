bench/experiments.ml: Array Baselines Dataset Harness Hiperbot Hpcsim List Metrics Param Printf Prng Stats Stdlib String
