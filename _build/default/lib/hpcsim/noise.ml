(* A configuration hash is folded with the seed through SplitMix64 via
   Prng.Rng.create; the first two outputs drive a Box-Muller step. *)

let rng_of ~seed config =
  let h = Param.Config.hash config in
  Prng.Rng.create ((seed * 0x9E3779B1) lxor (h * 0x85EBCA77) lxor 0x27220A95)

let uniform ~seed config = Prng.Rng.float (rng_of ~seed config)

let factor ~seed ~sigma config =
  if sigma = 0. then 1.
  else begin
    let rng = rng_of ~seed config in
    exp (sigma *. Prng.Rng.normal rng)
  end
