(** Synthetic Kripke: a deterministic S_N particle-transport sweep
    cost model standing in for the measured Kripke datasets of the
    paper (refs [10], [12]).

    Kripke sweeps a 3-D zone grid over [d] discrete-ordinate
    directions and [g] energy groups. Its tunables trade inner-loop
    vector efficiency against sweep-pipeline parallelism:

    - [nesting] — data-layout loop order over Directions, Groups,
      Zones. The innermost dimension fixes the vectorizable loop; its
      trip count depends on how many groups/directions each set holds.
    - [gset]/[dset] — number of energy-group and direction sets. More
      sets mean shorter inner loops (worse vectorization) but more
      independent work units to pipeline through the sweep wavefront
      (better parallel efficiency) and more, smaller messages.
    - [omp]/[ranks] — threads per rank and MPI ranks. Their product is
      the used core count; oversubscribing the machine is allowed but
      penalized, and wide OpenMP teams pay a NUMA penalty.

    The energy variant adds the PKG_LIMIT power cap (see {!Power}).

    Space sizes: exec 1620 configurations (paper: 1609), energy/
    transfer 17 820 (paper: 17 815 source, 17 385 target). *)

val space : Param.Space.t
(** nesting x gset x dset x omp x ranks; 1620 configurations. *)

val energy_space : Param.Space.t
(** [space] plus PKG_LIMIT; 17 820 configurations. *)

val exec_time : ?nodes:int -> Param.Config.t -> float
(** Execution time (s) of a configuration of [space]. [nodes]
    defaults to 16 (the paper's small-scale machine); 64 is the
    transfer-learning target scale. Weak scaling: work grows with
    node count. *)

val exec_time_capped : ?nodes:int -> Param.Config.t -> float
(** Execution time of a configuration of [energy_space], including
    power-cap throttling. Used as the transfer-learning objective. *)

val energy : ?nodes:int -> Param.Config.t -> float
(** Per-node package energy (J) of a configuration of
    [energy_space]. *)

val exec_table : unit -> Dataset.Table.t
(** Fully-evaluated exec-time dataset ("kripke", 16 nodes). *)

val energy_table : unit -> Dataset.Table.t
(** Fully-evaluated energy dataset ("kripke_energy", 16 nodes). *)

val transfer_source_table : unit -> Dataset.Table.t
(** Capped exec time at 16 nodes ("kripke_src"). *)

val transfer_target_table : unit -> Dataset.Table.t
(** Capped exec time at 64 nodes ("kripke_trgt"). *)
