(* Cost model: see the .mli for the physical story. All constants are
   named here; they were calibrated so that the 16-node exec-time
   dataset spans roughly the paper's 8.4-18 s range with only a few
   configurations near the optimum. *)

let total_groups = 32.
let total_directions = 96.
let cores_per_node = 16
let zones_per_node = 65536.
let work_per_element = 4.7e-7 (* seconds per zone-direction-group on one core *)
let vector_startup = 6. (* iterations of inner-loop ramp-up cost *)
let omp_overhead = 0.035 (* per-extra-thread barrier/scheduling cost *)
let numa_penalty = 1.12 (* teams wider than one NUMA domain (8 cores) *)
let oversubscription_exponent = 0.3 (* extra scheduling overhead beyond the core cap *)
let message_latency = 1.6e-3 (* seconds per sweep message wave *)
let link_bandwidth = 1.2e9 (* bytes/s *)
let noise_seed = 101
let noise_sigma = 0.02

let nestings = [| "DGZ"; "DZG"; "GDZ"; "GZD"; "ZDG"; "ZGD" |]

let space =
  Param.Space.make
    [
      Param.Spec.categorical "Nesting" (Array.to_list nestings);
      Param.Spec.ordinal_ints "Gset" [ 1; 2; 4 ];
      Param.Spec.ordinal_ints "Dset" [ 8; 16; 32 ];
      Param.Spec.ordinal_ints "OMP" [ 1; 2; 4; 8; 16 ];
      Param.Spec.ordinal_ints "Ranks" [ 2; 4; 8; 16; 32; 64 ];
    ]

let energy_space =
  Param.Space.make
    [
      Param.Spec.categorical "Nesting" (Array.to_list nestings);
      Param.Spec.ordinal_ints "Gset" [ 1; 2; 4 ];
      Param.Spec.ordinal_ints "Dset" [ 8; 16; 32 ];
      Param.Spec.ordinal_ints "OMP" [ 1; 2; 4; 8; 16 ];
      Param.Spec.ordinal_ints "Ranks" [ 2; 4; 8; 16; 32; 64 ];
      Param.Spec.ordinal_floats "PKG_LIMIT" (Array.to_list Power.caps_watts);
    ]

type decoded = {
  nesting : string;
  gset : float;
  dset : float;
  omp : float;
  ranks : float;
  cap : float option;
}

let decode sp config =
  let get name =
    let i = Param.Space.index_of_name sp name in
    (i, config.(i))
  in
  let level name =
    let i, v = get name in
    Param.Spec.level (Param.Space.spec sp i) (Param.Value.to_index v)
  in
  let nesting =
    let _, v = get "Nesting" in
    nestings.(Param.Value.to_index v)
  in
  let cap = try Some (level "PKG_LIMIT") with Not_found -> None in
  { nesting; gset = level "Gset"; dset = level "Dset"; omp = level "OMP"; ranks = level "Ranks"; cap }

(* Raw compute and communication seconds, before power capping. *)
let components ~nodes d =
  let nodes_f = float_of_int nodes in
  let zones = zones_per_node *. nodes_f in
  let cores_avail = float_of_int (cores_per_node * nodes) in
  let cores_used = d.ranks *. d.omp in
  let cores_effective = Float.min cores_used cores_avail in
  let oversub = Float.max 1. (cores_used /. cores_avail) in
  let groups_per_set = total_groups /. d.gset in
  let dirs_per_set = total_directions /. d.dset in
  let inner_length =
    match d.nesting.[2] with
    | 'Z' -> Float.min 256. (zones /. d.ranks)
    | 'G' -> groups_per_set
    | 'D' -> dirs_per_set
    | _ -> assert false
  in
  let vector_eff = inner_length /. (inner_length +. vector_startup) in
  let locality_penalty =
    (* The outermost dimension governs temporal reuse of the zone-
       indexed cross sections: re-streaming them per (d,g) chunk when
       zones are outermost costs the most. *)
    match d.nesting.[0] with 'D' -> 1.0 | 'G' -> 1.03 | 'Z' -> 1.10 | _ -> assert false
  in
  let omp_eff =
    let base = 1. /. (1. +. (omp_overhead *. (d.omp -. 1.))) in
    if d.omp > 8. then base /. numa_penalty else base
  in
  let zones_per_rank = zones /. d.ranks in
  let omp_util = Float.min 1. (zones_per_rank /. (d.omp *. 256.)) in
  let work_units = int_of_float (d.gset *. d.dset) in
  let work = zones *. total_directions *. total_groups *. work_per_element in
  (* Serial time of one rank's share of the sweep, then split into
     the gset x dset pipeline chunks the KBA wavefront schedules. *)
  let per_rank_serial =
    work *. locality_penalty /. vector_eff
    /. (cores_effective *. omp_eff *. omp_util)
    *. (oversub ** oversubscription_exponent)
  in
  let t_chunk = per_rank_serial /. float_of_int work_units in
  let face_elements = (zones_per_rank ** (2. /. 3.)) *. dirs_per_set *. groups_per_set in
  let bytes_per_message = 8. *. face_elements in
  let t_msg = message_latency +. (bytes_per_message /. link_bandwidth) in
  (* The wavefront simulator yields the end-to-end sweep makespan;
     everything beyond each rank's serial compute (fill, message
     waits) is reported as the communication component. *)
  let px, py = Simulate.Sweep.grid_of_ranks (int_of_float d.ranks) in
  let makespan = Simulate.Sweep.makespan ~px ~py ~work_units ~t_chunk ~t_msg in
  let compute = per_rank_serial in
  let comm = Float.max 0. (makespan -. per_rank_serial) in
  (compute, comm, cores_used)

(* Sparse pathological slowdowns: a fraction of configurations hit
   combination-specific effects the smooth model does not capture
   (message-buffer alignment, NUMA page placement, MPI rendezvous
   thresholds). They are a deterministic function of the full
   configuration, so they respect no lattice locality — like the
   measured datasets, where a configuration's neighbors say little
   about whether it trips one. *)
let pathology_fraction = 0.30
let pathology_max_penalty = 0.45

let pathology_factor ~seed config =
  let u = Noise.uniform ~seed:((seed * 7) + 13) config in
  if u < pathology_fraction then
    1. +. 0.08 +. ((pathology_max_penalty -. 0.08) *. (u /. pathology_fraction))
  else 1.

let raw_time ~nodes sp config =
  let d = decode sp config in
  let compute, comm, _ = components ~nodes d in
  (compute +. comm)
  *. pathology_factor ~seed:(noise_seed + nodes) config
  *. Noise.factor ~seed:(noise_seed + nodes) ~sigma:noise_sigma config

let exec_time ?(nodes = 16) config = raw_time ~nodes space config

let capped_parts ~nodes config =
  if not (Param.Space.validate energy_space config) then
    invalid_arg "Kripke: configuration lacks PKG_LIMIT";
  let d = decode energy_space config in
  let compute, comm, cores_used = components ~nodes d in
  let cap =
    match d.cap with Some c -> c | None -> invalid_arg "Kripke: configuration lacks PKG_LIMIT"
  in
  let active_cores =
    int_of_float (Float.min (float_of_int cores_per_node) (Float.max 1. (cores_used /. float_of_int nodes)))
  in
  let compute_fraction = compute /. (compute +. comm) in
  let slowdown = Power.slowdown Power.default ~active_cores ~cap_watts:cap ~compute_fraction in
  let base = compute +. comm in
  let time =
    base *. slowdown
    *. pathology_factor ~seed:(noise_seed + nodes) config
    *. Noise.factor ~seed:(noise_seed + nodes) ~sigma:noise_sigma config
  in
  (time, active_cores, cap)

let exec_time_capped ?(nodes = 16) config =
  let time, _, _ = capped_parts ~nodes config in
  time

let energy ?(nodes = 16) config =
  let time, active_cores, cap = capped_parts ~nodes config in
  time *. Power.power_draw Power.default ~active_cores ~cap_watts:cap

let exec_table () = Dataset.Table.create ~name:"kripke" ~space ~objective:(exec_time ~nodes:16)

let energy_table () =
  Dataset.Table.create ~name:"kripke_energy" ~space:energy_space ~objective:(energy ~nodes:16)

let transfer_source_table () =
  Dataset.Table.create ~name:"kripke_src" ~space:energy_space ~objective:(exec_time_capped ~nodes:16)

let transfer_target_table () =
  Dataset.Table.create ~name:"kripke_trgt" ~space:energy_space ~objective:(exec_time_capped ~nodes:64)
