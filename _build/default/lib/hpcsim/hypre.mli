(** Synthetic HYPRE [new_ij]: an algebraic-multigrid (AMG) solve cost
    model standing in for the measured HYPRE datasets (paper ref
    [13]).

    The model prices one BoomerAMG-preconditioned Krylov solve of a
    fixed 3-D Laplacian problem:

    - [Solver] — Krylov wrapper. Changes both iteration count and
      per-iteration work; AMG used stand-alone needs many more
      iterations, making solver choice genuinely important (Table I
      ranks it third).
    - [Ranks]/[OMP] — resource utilization. Their product must cover
      the machine or cores idle; oversubscription thrashes. These two
      dominate, matching Table I's ranking (Ranks 0.49, OMP 0.32).
    - [Smoother] — relaxation scheme; small convergence-rate effect.
    - [MU] — V- vs W-cycle: W-cycles converge slightly faster but do
      proportionally more work per cycle, so the net effect on time is
      nearly zero — reproducing the paper's JS importance of 0.00.
    - [PMX] — interpolation truncation; cheaper operators vs slightly
      more iterations, also a near-wash.

    The transfer variant extends the space with coarsening scheme and
    interpolation operator (the §IV parameter list) and evaluates at
    16-node (source) and 64-node (target) scales.

    Space sizes: selection 4608 (paper: 4589); transfer 55 296 (paper:
    57 313 source / 50 395 target). *)

val space : Param.Space.t
(** Solver x Smoother x Ranks x OMP x MU x PMX; 4608 configurations. *)

val transfer_space : Param.Space.t
(** [space] plus Coarsen and Interp; 55 296 configurations. *)

val solve_time : ?nodes:int -> Param.Config.t -> float
(** Solve time (s) for a configuration of [space]; [nodes] defaults
    to 16. *)

val solve_time_extended : ?nodes:int -> Param.Config.t -> float
(** Solve time for a configuration of [transfer_space]. *)

val table : unit -> Dataset.Table.t
(** "hypre" dataset at 16 nodes. *)

val transfer_source_table : unit -> Dataset.Table.t
(** "hypre_src": extended space at 16 nodes. *)

val transfer_target_table : unit -> Dataset.Table.t
(** "hypre_trgt": extended space at 64 nodes. *)
