lib/hpcsim/registry.mli: Dataset
