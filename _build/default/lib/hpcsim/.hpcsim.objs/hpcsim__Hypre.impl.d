lib/hpcsim/hypre.ml: Array Dataset Float Noise Param Stdlib
