lib/hpcsim/openatom.mli: Dataset Param
