lib/hpcsim/hypre.mli: Dataset Param
