lib/hpcsim/lulesh.mli: Dataset Param
