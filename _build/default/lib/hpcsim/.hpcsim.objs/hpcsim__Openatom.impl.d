lib/hpcsim/openatom.ml: Array Dataset Float Hashtbl Noise Param Simulate Stdlib
