lib/hpcsim/noise.ml: Param Prng
