lib/hpcsim/lulesh.ml: Array Dataset Noise Param
