lib/hpcsim/power.mli:
