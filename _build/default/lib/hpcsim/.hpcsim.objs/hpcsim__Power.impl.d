lib/hpcsim/power.ml: Array Stdlib
