lib/hpcsim/kripke.mli: Dataset Param
