lib/hpcsim/noise.mli: Param
