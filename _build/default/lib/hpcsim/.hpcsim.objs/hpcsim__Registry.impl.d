lib/hpcsim/registry.ml: Dataset Hypre Kripke List Lulesh Openatom
