lib/hpcsim/kripke.ml: Array Dataset Float Noise Param Power Simulate String
