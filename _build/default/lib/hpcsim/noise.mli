(** Deterministic measurement noise.

    The published datasets are single measurements of noisy systems;
    to mirror that, every simulator perturbs its analytic cost with a
    small multiplicative log-normal factor derived by hashing the
    configuration. The perturbation is a pure function of
    (seed, configuration), so a dataset built twice is identical — the
    determinism the whole experiment harness relies on. *)

val factor : seed:int -> sigma:float -> Param.Config.t -> float
(** Multiplicative noise factor [exp (sigma * z)] where [z] is a
    standard-normal deviate derived from the configuration hash.
    [sigma = 0.] yields exactly 1. *)

val uniform : seed:int -> Param.Config.t -> float
(** Deterministic uniform [0, 1) deviate for a configuration, for
    simulators that need auxiliary structured randomness (e.g. which
    solver/smoother combinations diverge). *)
