type entry = { name : string; description : string; table : unit -> Dataset.Table.t }

let memo f =
  let cache = ref None in
  fun () ->
    match !cache with
    | Some t -> t
    | None ->
        let t = f () in
        cache := Some t;
        t

let entry name description f = { name; description; table = memo f }

let all =
  [
    entry "kripke" "Kripke execution time, 16 nodes (1620 configs; paper 1609)" Kripke.exec_table;
    entry "kripke_energy" "Kripke energy under power capping (17820 configs; paper 17815)" Kripke.energy_table;
    entry "hypre" "HYPRE new_ij solve time, 16 nodes (4608 configs; paper 4589)" Hypre.table;
    entry "lulesh" "LULESH compiler flags (4800 configs; paper 4800)" Lulesh.table;
    entry "openatom" "OpenAtom over-decomposition (8640 configs; paper 8928)" Openatom.table;
    entry "kripke_src" "Kripke transfer source: capped exec time, 16 nodes" Kripke.transfer_source_table;
    entry "kripke_trgt" "Kripke transfer target: capped exec time, 64 nodes" Kripke.transfer_target_table;
    entry "hypre_src" "HYPRE transfer source: extended space, 16 nodes" Hypre.transfer_source_table;
    entry "hypre_trgt" "HYPRE transfer target: extended space, 64 nodes" Hypre.transfer_target_table;
  ]

let names = List.map (fun e -> e.name) all

let find name =
  match List.find_opt (fun e -> e.name = name) all with
  | Some e -> e
  | None -> raise Not_found

let selection_datasets = [ "kripke"; "kripke_energy"; "hypre"; "lulesh"; "openatom" ]
