(* AMG solve cost model; see the .mli. Constants calibrated so the
   16-node dataset clusters a few configurations near ~3.5 s with a
   long tail of under-provisioned / divergent runs, like Fig. 4. *)

let cores_per_node = 16
let rows_per_node = 2_000_000.
let nnz_per_row = 27. (* 3-D 27-point stencil *)
let flop_time = 1.6e-10 (* seconds per matrix nonzero traversal per core *)
let base_iterations = 22.
let setup_fraction = 0.35 (* AMG setup cost relative to one fine-grid sweep times levels *)
let omp_overhead = 0.05
let latency = 2.5e-5 (* per collective per level *)
let noise_seed = 202
let noise_sigma = 0.015

let solvers = [| "AMG"; "PCG"; "GMRES"; "BiCGSTAB" |]
let smoothers = [| "Jacobi"; "HybridGS"; "L1GS"; "Chebyshev"; "FCF-Jacobi"; "SymGS"; "SSOR"; "Polynomial" |]
let coarsenings = [| "Falgout"; "HMIS"; "PMIS"; "CLJP" |]
let interps = [| "Classical"; "ExtPlusI"; "FF1" |]

let base_specs =
  [
    Param.Spec.categorical "Solver" (Array.to_list solvers);
    Param.Spec.categorical "Smoother" (Array.to_list smoothers);
    Param.Spec.ordinal_ints "Ranks" [ 16; 32; 64; 128; 256; 512 ];
    Param.Spec.ordinal_ints "OMP" [ 1; 2; 4; 8 ];
    Param.Spec.ordinal_ints "MU" [ 1; 2 ];
    Param.Spec.ordinal_ints "PMX" [ 0; 4; 8 ];
  ]

let space = Param.Space.make base_specs

let transfer_space =
  Param.Space.make
    (base_specs
    @ [
        Param.Spec.categorical "Coarsen" (Array.to_list coarsenings);
        Param.Spec.categorical "Interp" (Array.to_list interps);
      ])

type decoded = {
  solver : int;
  smoother : int;
  ranks : float;
  omp : float;
  mu : float;
  pmx : float;
  coarsen : int;
  interp : int;
}

let decode sp config =
  let idx name = Param.Value.to_index config.(Param.Space.index_of_name sp name) in
  let level name = Param.Spec.level (Param.Space.spec sp (Param.Space.index_of_name sp name)) (idx name) in
  let opt_idx name = try idx name with Not_found -> 0 in
  {
    solver = idx "Solver";
    smoother = idx "Smoother";
    ranks = level "Ranks";
    omp = level "OMP";
    mu = level "MU";
    pmx = level "PMX";
    coarsen = opt_idx "Coarsen";
    interp = opt_idx "Interp";
  }

(* Iteration-count multiplier of each Krylov wrapper, and its
   per-iteration overhead (orthogonalization etc.) relative to one
   AMG cycle. *)
let solver_iters = [| 2.4; 1.0; 1.12; 1.06 |]
let solver_cycle_cost = [| 1.0; 1.08; 1.22; 1.16 |]

(* Smoother convergence multipliers: small spread, so smoother barely
   moves the objective (Table I importance 0.01). *)
let smoother_iters = [| 1.10; 1.00; 1.015; 1.04; 1.06; 0.99; 1.005; 1.08 |]
let smoother_cost = [| 0.92; 1.00; 1.00; 1.05; 0.97; 1.35; 1.30; 0.95 |]

(* Coarsening/interpolation (transfer space only): operator complexity
   vs convergence trade-offs. *)
let coarsen_iters = [| 1.0; 1.06; 1.10; 1.02 |]
let coarsen_complexity = [| 1.35; 1.0; 0.92; 1.25 |]
let interp_iters = [| 1.05; 1.0; 1.03 |]
let interp_complexity = [| 1.08; 1.0; 0.95 |]

(* Walk the multigrid hierarchy explicitly. Level l has rows/8^l rows
   (3-D coarsening); a mu-cycle visits level l mu^l times (V-cycle
   once, W-cycle 2^l times — this is where W-cycles get expensive,
   and why MU is a near-wash overall: more work per cycle buys fewer
   cycles). Fine levels are flop-bound; coarse levels have too few
   rows to occupy the machine and are dominated by collective
   latency. *)
let cycle_cost ~rows ~throughput ~ranks ~work_factor ~mu =
  let levels = Stdlib.max 1 (int_of_float (Float.round (log (rows /. 64.) /. log 8.))) in
  let compute = ref 0. and comm = ref 0. in
  for level = 0 to levels - 1 do
    let visits = mu ** float_of_int level in
    (* Coarse-level revisits are clamped (F-cycle-style truncation),
       as production AMG does to keep W-cycles affordable at scale. *)
    let visits = Float.min visits 2. in
    let level_rows = rows /. (8. ** float_of_int level) in
    let level_flops = level_rows *. nnz_per_row *. flop_time *. work_factor in
    compute := !compute +. (visits *. level_flops /. throughput);
    comm := !comm +. (visits *. 4. *. latency *. sqrt ranks)
  done;
  (!compute, !comm, levels)

let solve_time_of sp ~nodes config =
  let d = decode sp config in
  let nodes_f = float_of_int nodes in
  let rows = rows_per_node *. nodes_f in
  let cores_avail = float_of_int (cores_per_node * nodes) in
  let cores_used = d.ranks *. d.omp in
  let cores_eff = Float.min cores_used cores_avail in
  let oversub = Float.max 1. (cores_used /. cores_avail) in
  (* W-cycles converge in fewer iterations. *)
  let mu_iters = if d.mu > 1.5 then 0.62 else 1.0 in
  (* Interpolation truncation (pmx) sparsifies coarse operators. *)
  let pmx_work = if d.pmx > 6. then 0.86 else if d.pmx > 0.5 then 0.90 else 1.0 in
  let pmx_iters = if d.pmx > 6. then 1.17 else if d.pmx > 0.5 then 1.09 else 1.0 in
  let iterations =
    base_iterations *. solver_iters.(d.solver) *. smoother_iters.(d.smoother) *. mu_iters *. pmx_iters
    *. coarsen_iters.(d.coarsen) *. interp_iters.(d.interp)
  in
  let operator_complexity = coarsen_complexity.(d.coarsen) *. interp_complexity.(d.interp) in
  let work_factor =
    operator_complexity *. pmx_work *. smoother_cost.(d.smoother) *. solver_cycle_cost.(d.solver)
  in
  let omp_eff = 1. /. (1. +. (omp_overhead *. (d.omp -. 1.))) in
  let throughput = cores_eff *. omp_eff /. (oversub ** 1.3) in
  let per_cycle_compute, per_cycle_comm, levels =
    cycle_cost ~rows ~throughput ~ranks:d.ranks ~work_factor ~mu:d.mu
  in
  let setup = setup_fraction *. float_of_int levels *. per_cycle_compute in
  let time = setup +. (iterations *. (per_cycle_compute +. per_cycle_comm)) in
  time *. Noise.factor ~seed:(noise_seed + nodes) ~sigma:noise_sigma config

let solve_time ?(nodes = 16) config = solve_time_of space ~nodes config
let solve_time_extended ?(nodes = 16) config = solve_time_of transfer_space ~nodes config
let table () = Dataset.Table.create ~name:"hypre" ~space ~objective:(solve_time ~nodes:16)

let transfer_source_table () =
  Dataset.Table.create ~name:"hypre_src" ~space:transfer_space ~objective:(solve_time_extended ~nodes:16)

let transfer_target_table () =
  Dataset.Table.create ~name:"hypre_trgt" ~space:transfer_space ~objective:(solve_time_extended ~nodes:64)
