(** Synthetic OpenAtom: a Charm++ over-decomposition cost model
    standing in for the measured OpenAtom dataset (paper ref [15]).

    OpenAtom over-decomposes its electronic-structure phases into
    chares so the Charm++ runtime can overlap communication with
    computation and balance load. The tunables:

    - [sgrain] — states-per-chare grain of the dominant phase. Too
      coarse leaves too few chares per PE (no overlap, load
      imbalance); too fine pays per-chare scheduling overhead. The
      dominant parameter, as in Table I (JS 0.26).
    - [rhorx]/[rhory] — x/y decomposition of the density (rho) grid;
      they set message counts/sizes for the transpose phases, with the
      y split mattering more (the transpose direction).
    - [gratio] — grain ratio of the pair-calculator phase.
    - [rhoratio], [rhohx], [rhohy] — density helper-grain options with
      minor effects.
    - [ortho] — orthonormalization decomposition; near-zero effect
      (Table I: 0.00).

    The expert choice is a symmetric decomposition (paper: 1.6 s vs
    the exhaustive best of 1.24 s).

    Space size: 8640 configurations (paper: 8928). *)

val space : Param.Space.t

val exec_time : Param.Config.t -> float
(** Per-step execution time (s) on the fixed 128-PE machine. *)

val symmetric_expert_config : Param.Config.t
(** The symmetric-decomposition expert configuration. *)

val table : unit -> Dataset.Table.t
(** "openatom" dataset. *)
