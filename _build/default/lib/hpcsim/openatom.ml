(* Charm++ over-decomposition model. The state/pair phase is simulated
   with the event-driven task-graph scheduler: state chares compute,
   send their data to pair-calculator chares (network latency on the
   edge), and pair chares compute when both inputs arrive. With
   several chares per PE the runtime hides the latencies behind other
   chares' work (communication/computation overlap); with too few,
   PEs starve — so overlap efficiency *emerges* from the simulated
   schedule rather than being a closed-form assumption. Fine grains
   pay a per-chare runtime-congestion overhead instead. *)

let pes = 128
let n_states = 512.
let state_work_seconds = 70. (* core-seconds of state-phase compute per step *)
let pair_work_seconds = 30. (* core-seconds of pair-calculator compute per step *)
let chares_per_state_unit = 16. (* chares created per (n_states / sgrain) unit *)
let message_latency = 2.0e-3 (* state -> pair data transfer *)
let congestion_overhead = 1.5e-4 (* runtime-wide cost per live chare per step *)
let rho_grid = 288. (* density-grid planes *)
let rho_transpose_seconds = 14.4
let fixed_seconds = 0.1 (* non-tunable phases *)
let noise_seed = 404
let noise_sigma = 0.012

let space =
  Param.Space.make
    [
      Param.Spec.ordinal_ints "sgrain" [ 8; 16; 32; 64; 128 ];
      Param.Spec.ordinal_ints "rhorx" [ 1; 2; 4; 8 ];
      Param.Spec.ordinal_ints "rhory" [ 1; 2; 4; 8 ];
      Param.Spec.ordinal_floats "gratio" [ 0.5; 1.0; 2.0 ];
      Param.Spec.ordinal_floats "rhoratio" [ 0.5; 1.0; 2.0 ];
      Param.Spec.ordinal_ints "rhohx" [ 1; 2 ];
      Param.Spec.ordinal_ints "rhohy" [ 1; 2 ];
      Param.Spec.categorical "ortho" [ "sym"; "asym"; "auto" ];
    ]

let level sp config name =
  Param.Spec.level (Param.Space.spec sp (Param.Space.index_of_name sp name))
    (Param.Value.to_index config.(Param.Space.index_of_name sp name))

(* Simulated makespan of the state + pair phase for a given
   decomposition. Memoized on (n_state, n_pair): the task-graph shape
   only depends on the chare counts. *)
let phase_makespan =
  let cache = Hashtbl.create 32 in
  fun ~n_state ~n_pair ->
    match Hashtbl.find_opt cache (n_state, n_pair) with
    | Some t -> t
    | None ->
        let d_state = state_work_seconds /. float_of_int n_state in
        let d_pair = pair_work_seconds /. float_of_int (Stdlib.max 1 n_pair) in
        (* Chare work is not uniform (different plane-wave counts per
           state): +-50% deterministic variation. Many chares per PE
           average it out; one chare per PE exposes the maximum —
           the load-balancing argument for over-decomposition. *)
        let wobble k = 0.5 +. (1.0 *. float_of_int ((k * 2654435761) land 0xFFFF) /. 65536.) in
        let tasks =
          Array.init (n_state + n_pair) (fun k ->
              if k < n_state then
                (* State chare: no dependencies, round-robin on PEs. *)
                {
                  Simulate.Taskgraph.duration = d_state *. wobble k;
                  resource = k mod pes;
                  deps = [||];
                }
              else begin
                (* Pair chare: needs the data of two distinct state
                   chares (deterministic partner choice). *)
                let q = k - n_state in
                let a = (2 * q) mod n_state in
                let b = ((2 * q) + 17) mod n_state in
                let deps =
                  if a = b then [| (a, message_latency) |]
                  else [| (a, message_latency); (b, message_latency) |]
                in
                {
                  Simulate.Taskgraph.duration = d_pair *. wobble k;
                  resource = ((q * 31) + 5) mod pes;
                  deps;
                }
              end)
        in
        let result = Simulate.Taskgraph.simulate ~n_resources:pes tasks in
        Hashtbl.replace cache (n_state, n_pair) result.Simulate.Taskgraph.makespan;
        result.Simulate.Taskgraph.makespan

let exec_time config =
  let lv = level space config in
  let sgrain = lv "sgrain" in
  let rhorx = lv "rhorx" in
  let rhory = lv "rhory" in
  let gratio = lv "gratio" in
  let rhoratio = lv "rhoratio" in
  let rhohx = lv "rhohx" in
  let rhohy = lv "rhohy" in
  let ortho = Param.Value.to_index config.(Param.Space.index_of_name space "ortho") in
  let n_state = int_of_float (n_states /. sgrain *. chares_per_state_unit) in
  let n_pair = int_of_float (float_of_int n_state *. gratio) in
  let phase = phase_makespan ~n_state ~n_pair in
  (* Fine decompositions congest the runtime (message injection,
     scheduler queues) in proportion to the live chare count. *)
  let congestion = congestion_overhead *. float_of_int (n_state + n_pair) in
  (* Density transposes: splitting y creates parallelism in the
     transpose direction; splitting x mostly adds messages. *)
  let rho_chares = rho_grid /. 4. *. rhorx *. rhory *. rhoratio in
  let transpose_parallelism = Float.min (float_of_int pes) (rho_grid *. rhory /. 4.) in
  let rho_compute = rho_transpose_seconds /. transpose_parallelism in
  let rho_messages = rho_chares *. sqrt rhorx in
  let rho_overhead = 3.0e-5 *. rho_messages in
  (* Helper grains: mild cache effects. *)
  let helper = 1. +. (0.012 *. (rhohx -. 1.)) +. (0.02 *. (rhohy -. 1.)) in
  (* Ortho decomposition: negligible, the phase is tiny. *)
  let ortho_factor = match ortho with 0 -> 1.0 | 1 -> 1.004 | 2 -> 1.002 | _ -> assert false in
  let time =
    ((phase +. congestion +. rho_compute +. rho_overhead) *. helper *. ortho_factor)
    +. fixed_seconds
  in
  time *. Noise.factor ~seed:noise_seed ~sigma:noise_sigma config

let symmetric_expert_config =
  (* Symmetric decomposition: equal x/y splits, unit ratios, sym
     ortho, coarse grain. *)
  [|
    Param.Value.Ordinal 3 (* sgrain=64 *);
    Param.Value.Ordinal 1 (* rhorx=2 *);
    Param.Value.Ordinal 1 (* rhory=2 *);
    Param.Value.Ordinal 1 (* gratio=1.0 *);
    Param.Value.Ordinal 1 (* rhoratio=1.0 *);
    Param.Value.Ordinal 0 (* rhohx=1 *);
    Param.Value.Ordinal 0 (* rhohy=1 *);
    Param.Value.Categorical 0 (* ortho=sym *);
  |]

let table () = Dataset.Table.create ~name:"openatom" ~space ~objective:exec_time
