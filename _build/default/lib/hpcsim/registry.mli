(** Name-indexed access to every built-in dataset.

    Used by the CLI and the benchmark harness so experiments can refer
    to datasets by the names used in the paper's figures. Tables are
    built lazily and memoized — the transfer tables have tens of
    thousands of rows and are only materialized when an experiment
    needs them. *)

type entry = {
  name : string;
  description : string;
  table : unit -> Dataset.Table.t;  (** memoized *)
}

val all : entry list
(** Every dataset, in the order the paper presents them:
    kripke, kripke_energy, hypre, lulesh, openatom,
    kripke_src, kripke_trgt, hypre_src, hypre_trgt. *)

val names : string list

val find : string -> entry
(** Raises [Not_found] for unknown names. *)

val selection_datasets : string list
(** The five configuration-selection datasets of §V. *)
