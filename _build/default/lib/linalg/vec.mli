(** Dense float vectors.

    Thin wrappers over [float array] with the arithmetic needed by the
    [nn] and [gp] substrates. All binary operations require equal
    lengths and raise [Invalid_argument] otherwise. *)

type t = float array

val create : int -> float -> t
val init : int -> (int -> float) -> t
val dim : t -> int
val copy : t -> t
val of_list : float list -> t
val fill : t -> float -> unit

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
(** Element-wise product. *)

val scale : float -> t -> t
val axpy : float -> t -> t -> unit
(** [axpy a x y] performs [y <- a*x + y] in place. *)

val dot : t -> t -> float
val norm2 : t -> float
(** Euclidean norm. *)

val sum : t -> float
val mean : t -> float
val max : t -> float
val min : t -> float
val argmax : t -> int
val argmin : t -> int
val map : (float -> float) -> t -> t
val map2 : (float -> float -> float) -> t -> t -> t
val sq_dist : t -> t -> float
(** Squared Euclidean distance. *)

val pp : Format.formatter -> t -> unit
