lib/linalg/vec.ml: Array Format Printf
