lib/linalg/vec.mli: Format
