(** Dense row-major matrices with the factorizations needed by the
    [gp] substrate (Cholesky) and the [nn] substrate (GEMM-style
    products). Dimensions are validated; mismatches raise
    [Invalid_argument]. *)

type t

val create : int -> int -> float -> t
val init : int -> int -> (int -> int -> float) -> t
val identity : int -> t
val rows : t -> int
val cols : t -> int
val get : t -> int -> int -> float
val set : t -> int -> int -> float -> unit
val copy : t -> t
val of_arrays : float array array -> t
val to_arrays : t -> float array array
val row : t -> int -> Vec.t
val col : t -> int -> Vec.t
val transpose : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val scale : float -> t -> t
val matmul : t -> t -> t
val mat_vec : t -> Vec.t -> Vec.t
val vec_mat : Vec.t -> t -> Vec.t
val outer : Vec.t -> Vec.t -> t
val trace : t -> float
val map : (float -> float) -> t -> t

val cholesky : t -> t
(** [cholesky a] returns the lower-triangular [l] with [l * l^T = a].
    Requires [a] symmetric positive definite; raises [Failure]
    otherwise. A small jitter should be added by the caller if the
    matrix is only positive semi-definite. *)

val solve_lower : t -> Vec.t -> Vec.t
(** Forward substitution: solves [l x = b] for lower-triangular [l]. *)

val solve_upper : t -> Vec.t -> Vec.t
(** Backward substitution: solves [u x = b] for upper-triangular [u]. *)

val cholesky_solve : t -> Vec.t -> Vec.t
(** [cholesky_solve l b] solves [a x = b] given [l = cholesky a]. *)

val log_det_from_cholesky : t -> float
(** Log-determinant of [a] from its Cholesky factor. *)

val pp : Format.formatter -> t -> unit
