type t = float array

let create n x = Array.make n x
let init = Array.init
let dim = Array.length
let copy = Array.copy
let of_list = Array.of_list
let fill v x = Array.fill v 0 (Array.length v) x

let check_dims name a b =
  if Array.length a <> Array.length b then
    invalid_arg (Printf.sprintf "Vec.%s: dimension mismatch (%d vs %d)" name (Array.length a) (Array.length b))

let add a b =
  check_dims "add" a b;
  Array.mapi (fun i x -> x +. b.(i)) a

let sub a b =
  check_dims "sub" a b;
  Array.mapi (fun i x -> x -. b.(i)) a

let mul a b =
  check_dims "mul" a b;
  Array.mapi (fun i x -> x *. b.(i)) a

let scale s a = Array.map (fun x -> s *. x) a

let axpy a x y =
  check_dims "axpy" x y;
  for i = 0 to Array.length x - 1 do
    y.(i) <- y.(i) +. (a *. x.(i))
  done

let dot a b =
  check_dims "dot" a b;
  let acc = ref 0. in
  for i = 0 to Array.length a - 1 do
    acc := !acc +. (a.(i) *. b.(i))
  done;
  !acc

let norm2 a = sqrt (dot a a)
let sum a = Array.fold_left ( +. ) 0. a

let mean a =
  if Array.length a = 0 then invalid_arg "Vec.mean: empty vector";
  sum a /. float_of_int (Array.length a)

let extremum name cmp a =
  if Array.length a = 0 then invalid_arg ("Vec." ^ name ^ ": empty vector");
  Array.fold_left (fun acc x -> if cmp x acc then x else acc) a.(0) a

let max a = extremum "max" ( > ) a
let min a = extremum "min" ( < ) a

let arg_extremum name cmp a =
  if Array.length a = 0 then invalid_arg ("Vec." ^ name ^ ": empty vector");
  let best = ref 0 in
  for i = 1 to Array.length a - 1 do
    if cmp a.(i) a.(!best) then best := i
  done;
  !best

let argmax a = arg_extremum "argmax" ( > ) a
let argmin a = arg_extremum "argmin" ( < ) a
let map = Array.map

let map2 f a b =
  check_dims "map2" a b;
  Array.mapi (fun i x -> f x b.(i)) a

let sq_dist a b =
  check_dims "sq_dist" a b;
  let acc = ref 0. in
  for i = 0 to Array.length a - 1 do
    let d = a.(i) -. b.(i) in
    acc := !acc +. (d *. d)
  done;
  !acc

let pp fmt v =
  Format.fprintf fmt "[|";
  Array.iteri (fun i x -> if i = 0 then Format.fprintf fmt "%g" x else Format.fprintf fmt "; %g" x) v;
  Format.fprintf fmt "|]"
