type t = { rows : int; cols : int; data : float array }

let create rows cols x =
  if rows < 0 || cols < 0 then invalid_arg "Mat.create: negative dimension";
  { rows; cols; data = Array.make (rows * cols) x }

let init rows cols f =
  if rows < 0 || cols < 0 then invalid_arg "Mat.init: negative dimension";
  { rows; cols; data = Array.init (rows * cols) (fun k -> f (k / cols) (k mod cols)) }

let identity n = init n n (fun i j -> if i = j then 1. else 0.)
let rows m = m.rows
let cols m = m.cols

let get m i j =
  if i < 0 || i >= m.rows || j < 0 || j >= m.cols then invalid_arg "Mat.get: out of bounds";
  m.data.((i * m.cols) + j)

let set m i j x =
  if i < 0 || i >= m.rows || j < 0 || j >= m.cols then invalid_arg "Mat.set: out of bounds";
  m.data.((i * m.cols) + j) <- x

let copy m = { m with data = Array.copy m.data }

let of_arrays arrs =
  let rows = Array.length arrs in
  if rows = 0 then { rows = 0; cols = 0; data = [||] }
  else begin
    let cols = Array.length arrs.(0) in
    Array.iter (fun r -> if Array.length r <> cols then invalid_arg "Mat.of_arrays: ragged rows") arrs;
    init rows cols (fun i j -> arrs.(i).(j))
  end

let to_arrays m = Array.init m.rows (fun i -> Array.sub m.data (i * m.cols) m.cols)
let row m i = Array.sub m.data (i * m.cols) m.cols
let col m j = Array.init m.rows (fun i -> get m i j)
let transpose m = init m.cols m.rows (fun i j -> get m j i)

let same_shape name a b =
  if a.rows <> b.rows || a.cols <> b.cols then
    invalid_arg (Printf.sprintf "Mat.%s: shape mismatch (%dx%d vs %dx%d)" name a.rows a.cols b.rows b.cols)

let add a b =
  same_shape "add" a b;
  { a with data = Array.mapi (fun k x -> x +. b.data.(k)) a.data }

let sub a b =
  same_shape "sub" a b;
  { a with data = Array.mapi (fun k x -> x -. b.data.(k)) a.data }

let scale s a = { a with data = Array.map (fun x -> s *. x) a.data }

let matmul a b =
  if a.cols <> b.rows then
    invalid_arg (Printf.sprintf "Mat.matmul: inner dimension mismatch (%d vs %d)" a.cols b.rows);
  let out = create a.rows b.cols 0. in
  (* i-k-j loop order keeps the inner loop contiguous in both [b] and
     [out], which matters for the nn training inner loops. *)
  for i = 0 to a.rows - 1 do
    for k = 0 to a.cols - 1 do
      let aik = a.data.((i * a.cols) + k) in
      if aik <> 0. then
        for j = 0 to b.cols - 1 do
          out.data.((i * out.cols) + j) <-
            out.data.((i * out.cols) + j) +. (aik *. b.data.((k * b.cols) + j))
        done
    done
  done;
  out

let mat_vec m v =
  if m.cols <> Array.length v then invalid_arg "Mat.mat_vec: dimension mismatch";
  Array.init m.rows (fun i ->
      let acc = ref 0. in
      for j = 0 to m.cols - 1 do
        acc := !acc +. (m.data.((i * m.cols) + j) *. v.(j))
      done;
      !acc)

let vec_mat v m =
  if m.rows <> Array.length v then invalid_arg "Mat.vec_mat: dimension mismatch";
  Array.init m.cols (fun j ->
      let acc = ref 0. in
      for i = 0 to m.rows - 1 do
        acc := !acc +. (v.(i) *. m.data.((i * m.cols) + j))
      done;
      !acc)

let outer a b = init (Array.length a) (Array.length b) (fun i j -> a.(i) *. b.(j))

let trace m =
  let n = min m.rows m.cols in
  let acc = ref 0. in
  for i = 0 to n - 1 do
    acc := !acc +. get m i i
  done;
  !acc

let map f m = { m with data = Array.map f m.data }

let cholesky a =
  if a.rows <> a.cols then invalid_arg "Mat.cholesky: not square";
  let n = a.rows in
  let l = create n n 0. in
  for i = 0 to n - 1 do
    for j = 0 to i do
      let s = ref (get a i j) in
      for k = 0 to j - 1 do
        s := !s -. (get l i k *. get l j k)
      done;
      if i = j then begin
        if !s <= 0. then failwith "Mat.cholesky: matrix not positive definite";
        set l i i (sqrt !s)
      end
      else set l i j (!s /. get l j j)
    done
  done;
  l

let solve_lower l b =
  if l.rows <> l.cols || l.rows <> Array.length b then invalid_arg "Mat.solve_lower: dimension mismatch";
  let n = l.rows in
  let x = Array.make n 0. in
  for i = 0 to n - 1 do
    let s = ref b.(i) in
    for j = 0 to i - 1 do
      s := !s -. (get l i j *. x.(j))
    done;
    x.(i) <- !s /. get l i i
  done;
  x

let solve_upper u b =
  if u.rows <> u.cols || u.rows <> Array.length b then invalid_arg "Mat.solve_upper: dimension mismatch";
  let n = u.rows in
  let x = Array.make n 0. in
  for i = n - 1 downto 0 do
    let s = ref b.(i) in
    for j = i + 1 to n - 1 do
      s := !s -. (get u i j *. x.(j))
    done;
    x.(i) <- !s /. get u i i
  done;
  x

let cholesky_solve l b = solve_upper (transpose l) (solve_lower l b)

let log_det_from_cholesky l =
  let acc = ref 0. in
  for i = 0 to l.rows - 1 do
    acc := !acc +. log (get l i i)
  done;
  2. *. !acc

let pp fmt m =
  Format.fprintf fmt "@[<v>";
  for i = 0 to m.rows - 1 do
    Format.fprintf fmt "@[<h>";
    for j = 0 to m.cols - 1 do
      Format.fprintf fmt "%8.4f " (get m i j)
    done;
    Format.fprintf fmt "@]@,"
  done;
  Format.fprintf fmt "@]"
