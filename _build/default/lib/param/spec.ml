type domain =
  | Categorical of string array
  | Ordinal of float array
  | Continuous of { lo : float; hi : float }

type t = { name : string; domain : domain }

let make ~name domain =
  (match domain with
  | Categorical labels -> if Array.length labels = 0 then invalid_arg "Spec.make: empty label table"
  | Ordinal levels ->
      if Array.length levels = 0 then invalid_arg "Spec.make: empty level table";
      for i = 1 to Array.length levels - 1 do
        if levels.(i) <= levels.(i - 1) then invalid_arg "Spec.make: levels must be strictly increasing"
      done
  | Continuous { lo; hi } -> if not (lo < hi) then invalid_arg "Spec.make: empty range");
  { name; domain }

let categorical name labels = make ~name (Categorical (Array.of_list labels))
let ordinal_ints name levels = make ~name (Ordinal (Array.of_list (List.map float_of_int levels)))
let ordinal_floats name levels = make ~name (Ordinal (Array.of_list levels))
let continuous name ~lo ~hi = make ~name (Continuous { lo; hi })
let name t = t.name
let domain t = t.domain

let is_discrete t =
  match t.domain with Categorical _ | Ordinal _ -> true | Continuous _ -> false

let n_choices t =
  match t.domain with
  | Categorical labels -> Some (Array.length labels)
  | Ordinal levels -> Some (Array.length levels)
  | Continuous _ -> None

let validate t v =
  match (t.domain, v) with
  | Categorical labels, Value.Categorical i -> i >= 0 && i < Array.length labels
  | Ordinal levels, Value.Ordinal i -> i >= 0 && i < Array.length levels
  | Continuous { lo; hi }, Value.Continuous f -> f >= lo && f <= hi
  | Categorical _, (Value.Ordinal _ | Value.Continuous _)
  | Ordinal _, (Value.Categorical _ | Value.Continuous _)
  | Continuous _, (Value.Categorical _ | Value.Ordinal _) ->
      false

let value_to_string t v =
  match (t.domain, v) with
  | Categorical labels, Value.Categorical i when i >= 0 && i < Array.length labels -> labels.(i)
  | Ordinal levels, Value.Ordinal i when i >= 0 && i < Array.length levels ->
      let l = levels.(i) in
      if Float.is_integer l then string_of_int (int_of_float l) else Printf.sprintf "%g" l
  | Continuous _, Value.Continuous f -> Printf.sprintf "%g" f
  | (Categorical _ | Ordinal _ | Continuous _), _ -> invalid_arg "Spec.value_to_string: value does not match spec"

let value_of_index t i =
  match t.domain with
  | Categorical labels ->
      if i < 0 || i >= Array.length labels then invalid_arg "Spec.value_of_index: index out of range";
      Value.Categorical i
  | Ordinal levels ->
      if i < 0 || i >= Array.length levels then invalid_arg "Spec.value_of_index: index out of range";
      Value.Ordinal i
  | Continuous _ -> invalid_arg "Spec.value_of_index: continuous spec"

let level t i =
  match t.domain with
  | Ordinal levels ->
      if i < 0 || i >= Array.length levels then invalid_arg "Spec.level: index out of range";
      levels.(i)
  | Categorical _ | Continuous _ -> invalid_arg "Spec.level: not an ordinal spec"

let numeric_encoding t v =
  match (t.domain, v) with
  | Categorical labels, Value.Categorical i ->
      let n = Array.length labels in
      if n = 1 then 0. else float_of_int i /. float_of_int (n - 1)
  | Ordinal levels, Value.Ordinal i ->
      let n = Array.length levels in
      if n = 1 then 0. else float_of_int i /. float_of_int (n - 1)
  | Continuous { lo; hi }, Value.Continuous f -> (f -. lo) /. (hi -. lo)
  | (Categorical _ | Ordinal _ | Continuous _), _ ->
      invalid_arg "Spec.numeric_encoding: value does not match spec"

let one_hot_width t =
  match t.domain with
  | Categorical labels -> Array.length labels
  | Ordinal _ | Continuous _ -> 1

let random_value t rng =
  match t.domain with
  | Categorical labels -> Value.Categorical (Prng.Rng.int rng (Array.length labels))
  | Ordinal levels -> Value.Ordinal (Prng.Rng.int rng (Array.length levels))
  | Continuous { lo; hi } -> Value.Continuous (Prng.Rng.float_range rng lo hi)

let pp fmt t =
  match t.domain with
  | Categorical labels -> Format.fprintf fmt "%s : cat{%s}" t.name (String.concat "," (Array.to_list labels))
  | Ordinal levels ->
      Format.fprintf fmt "%s : ord{%s}" t.name
        (String.concat "," (Array.to_list (Array.map (Printf.sprintf "%g") levels)))
  | Continuous { lo; hi } -> Format.fprintf fmt "%s : [%g, %g]" t.name lo hi
