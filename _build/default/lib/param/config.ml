type t = Value.t array

let equal a b = Array.length a = Array.length b && Array.for_all2 Value.equal a b

let compare a b =
  let c = Int.compare (Array.length a) (Array.length b) in
  if c <> 0 then c
  else begin
    let n = Array.length a in
    let rec scan i =
      if i = n then 0
      else
        let c = Value.compare a.(i) b.(i) in
        if c <> 0 then c else scan (i + 1)
    in
    scan 0
  end

let hash t = Array.fold_left (fun acc v -> (acc * 31) + Value.hash v) 17 t

module Table = Hashtbl.Make (struct
  type nonrec t = t

  let equal = equal
  let hash = hash
end)

let pp fmt t =
  Format.fprintf fmt "(";
  Array.iteri (fun i v -> if i = 0 then Value.pp fmt v else Format.fprintf fmt ", %a" Value.pp v) t;
  Format.fprintf fmt ")"
