(** Runtime value of a single tunable parameter.

    Discrete values are stored as indices into their declaring
    [Spec.t]'s category/level table; continuous values are raw floats.
    Values only make sense relative to a spec — see {!Spec.validate}. *)

type t =
  | Categorical of int  (** index into the spec's label table *)
  | Ordinal of int  (** index into the spec's level table *)
  | Continuous of float

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int
val pp : Format.formatter -> t -> unit

val to_index : t -> int
(** Index of a discrete value. Raises [Invalid_argument] for
    [Continuous]. *)

val to_float_raw : t -> float
(** The float of a [Continuous] value. Raises [Invalid_argument] for
    discrete values. *)
