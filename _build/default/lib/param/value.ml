type t = Categorical of int | Ordinal of int | Continuous of float

let equal a b =
  match (a, b) with
  | Categorical x, Categorical y -> x = y
  | Ordinal x, Ordinal y -> x = y
  | Continuous x, Continuous y -> Float.equal x y
  | (Categorical _ | Ordinal _ | Continuous _), _ -> false

let compare a b =
  match (a, b) with
  | Categorical x, Categorical y -> Int.compare x y
  | Ordinal x, Ordinal y -> Int.compare x y
  | Continuous x, Continuous y -> Float.compare x y
  | Categorical _, (Ordinal _ | Continuous _) -> -1
  | Ordinal _, Categorical _ -> 1
  | Ordinal _, Continuous _ -> -1
  | Continuous _, (Categorical _ | Ordinal _) -> 1

let hash = function
  | Categorical i -> Hashtbl.hash (0, i)
  | Ordinal i -> Hashtbl.hash (1, i)
  | Continuous f -> Hashtbl.hash (2, f)

let pp fmt = function
  | Categorical i -> Format.fprintf fmt "cat:%d" i
  | Ordinal i -> Format.fprintf fmt "ord:%d" i
  | Continuous f -> Format.fprintf fmt "%g" f

let to_index = function
  | Categorical i | Ordinal i -> i
  | Continuous _ -> invalid_arg "Value.to_index: continuous value"

let to_float_raw = function
  | Continuous f -> f
  | Categorical _ | Ordinal _ -> invalid_arg "Value.to_float_raw: discrete value"
