lib/param/value.ml: Float Format Hashtbl Int
