lib/param/spec.mli: Format Prng Value
