lib/param/space.mli: Config Format Prng Spec
