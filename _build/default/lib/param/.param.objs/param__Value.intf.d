lib/param/value.mli: Format
