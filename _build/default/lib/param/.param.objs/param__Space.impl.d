lib/param/space.ml: Array Float Format Printf Spec String Value
