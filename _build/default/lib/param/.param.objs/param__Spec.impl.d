lib/param/spec.ml: Array Float Format List Printf Prng String Value
