lib/param/config.mli: Format Hashtbl Value
