lib/param/config.ml: Array Format Hashtbl Int Value
