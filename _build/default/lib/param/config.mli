(** A configuration: one value per parameter of a space.

    Configurations are plain value arrays; the pairing with the
    declaring {!Space.t} is by position. Equality, comparison, and
    hashing are structural, enabling use as hashtable keys (duplicate
    elimination in the Ranking strategy). *)

type t = Value.t array

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

module Table : Hashtbl.S with type key = t
(** Hashtables keyed by configuration. *)

val pp : Format.formatter -> t -> unit
