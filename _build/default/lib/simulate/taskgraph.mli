(** Event-driven list scheduling of task DAGs over serial resources.

    A task has a duration, a set of predecessor tasks, and a resource
    (e.g. an MPI rank); a resource executes one task at a time in
    ready order. Edges may carry a communication latency that is paid
    only when the two endpoints live on different resources. The
    simulator computes each task's completion time and the overall
    makespan — the substrate behind the {!Sweep} wavefront model, and
    a general tool for modelling pipelined HPC phases. *)

type task = {
  duration : float;  (** execution time on its resource; >= 0 *)
  resource : int;  (** serial resource id, [0 <= resource < n_resources] *)
  deps : (int * float) array;
      (** (predecessor task id, message latency); latency is charged
          only when the predecessor ran on a different resource *)
}

type result = {
  makespan : float;
  completion : float array;  (** per-task completion time *)
  events : int;  (** engine events processed *)
}

val simulate : n_resources:int -> task array -> result
(** Task ids are array indices; dependencies must point to earlier
    indices (the DAG must be topologically ordered), otherwise
    [Invalid_argument] is raised. Ready tasks on the same resource
    execute in ready-time order; the order among tasks that become
    ready at exactly the same instant is deterministic but
    unspecified. *)
