type t = {
  queue : (t -> unit) Heap.t;
  mutable clock : float;
  mutable processed : int;
}

let create () = { queue = Heap.create (); clock = 0.; processed = 0 }
let now t = t.clock

let schedule t ~at handler =
  if at < t.clock then invalid_arg "Engine.schedule: event in the past";
  Heap.push t.queue at handler

let schedule_after t ~delay handler =
  if delay < 0. then invalid_arg "Engine.schedule_after: negative delay";
  schedule t ~at:(t.clock +. delay) handler

let step t =
  match Heap.pop t.queue with
  | None -> false
  | Some (at, handler) ->
      t.clock <- at;
      t.processed <- t.processed + 1;
      handler t;
      true

let run t =
  while step t do
    ()
  done;
  t.clock

let events_processed t = t.processed
