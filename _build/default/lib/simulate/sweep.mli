(** KBA transport-sweep wavefront simulator.

    Kripke-style S_N transport sweeps a spatial domain decomposed over
    a 2-D [px x py] rank grid (the Koch–Baker–Alcouffe scheme). Each
    rank processes [work_units] pipeline chunks (group-set x
    direction-set blocks); chunk [(i, j, u)] can start only when the
    upwind chunks [(i-1, j, u)] and [(i, j-1, u)] have arrived (one
    message latency each) and the rank has finished its previous chunk
    [(i, j, u-1)]. The makespan of this dependence graph is what the
    closed-form "pipeline efficiency" formulas approximate; here it is
    computed exactly by dynamic programming over the wavefront order
    (and, for validation, by the generic {!Taskgraph} simulator). *)

val grid_of_ranks : int -> int * int
(** Near-square 2-D factorization [px x py = ranks], [px <= py].
    Requires a positive rank count. *)

val makespan : px:int -> py:int -> work_units:int -> t_chunk:float -> t_msg:float -> float
(** Exact makespan of one full sweep by dynamic programming.
    Requires positive dimensions and unit count and non-negative
    times. O(px * py * work_units) time, O(py * work_units) space. *)

val makespan_taskgraph :
  px:int -> py:int -> work_units:int -> t_chunk:float -> t_msg:float -> Taskgraph.result
(** The same instance run through the event-driven {!Taskgraph}
    scheduler (each rank is a serial resource). Used to cross-validate
    the DP; the two makespans must agree. *)

val pipeline_efficiency : px:int -> py:int -> work_units:int -> t_chunk:float -> t_msg:float -> float
(** Useful-work fraction: [work_units * t_chunk / makespan]. In
    (0, 1]; approaches 1 as [work_units] grows (deep pipelining) and
    degrades with grid diameter (wavefront fill) and message cost. *)
