lib/simulate/taskgraph.mli:
