lib/simulate/engine.ml: Heap
