lib/simulate/sweep.mli: Taskgraph
