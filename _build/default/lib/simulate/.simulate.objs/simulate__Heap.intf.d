lib/simulate/heap.mli:
