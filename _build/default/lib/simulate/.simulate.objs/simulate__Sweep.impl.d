lib/simulate/sweep.ml: Array Float Taskgraph
