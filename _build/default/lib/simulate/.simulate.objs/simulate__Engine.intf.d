lib/simulate/engine.mli:
