lib/simulate/taskgraph.ml: Array Engine Float Heap List
