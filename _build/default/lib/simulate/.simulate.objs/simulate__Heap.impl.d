lib/simulate/heap.ml: Array Stdlib
