(** Minimal discrete-event simulation engine.

    Events are thunks scheduled at absolute times; running the engine
    pops them in time order and executes them, letting handlers
    schedule further events. This is the substrate under the
    {!Taskgraph} scheduler simulator. *)

type t

val create : unit -> t

val now : t -> float
(** Current simulation time: 0 before the first event, otherwise the
    timestamp of the event being (or last) processed. *)

val schedule : t -> at:float -> (t -> unit) -> unit
(** Schedule a handler at absolute time [at]. Raises
    [Invalid_argument] if [at] is in the simulated past. *)

val schedule_after : t -> delay:float -> (t -> unit) -> unit
(** Schedule relative to {!now}. Requires a non-negative delay. *)

val run : t -> float
(** Process events until the queue is empty; returns the final
    simulation time. Event counts are bounded by what handlers
    schedule. *)

val step : t -> bool
(** Process one event; [false] when the queue was empty. *)

val events_processed : t -> int
