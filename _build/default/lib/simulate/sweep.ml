let grid_of_ranks ranks =
  if ranks < 1 then invalid_arg "Sweep.grid_of_ranks: positive rank count required";
  let rec search p = if ranks mod p = 0 then (p, ranks / p) else search (p - 1) in
  search (int_of_float (sqrt (float_of_int ranks)))

let check_args ~px ~py ~work_units ~t_chunk ~t_msg =
  if px < 1 || py < 1 then invalid_arg "Sweep: grid dimensions must be positive";
  if work_units < 1 then invalid_arg "Sweep: work_units must be positive";
  if t_chunk < 0. || t_msg < 0. then invalid_arg "Sweep: negative times"

let makespan ~px ~py ~work_units ~t_chunk ~t_msg =
  check_args ~px ~py ~work_units ~t_chunk ~t_msg;
  (* Recurrence: C(i,j,u) = t_chunk + max of
       C(i-1,j,u) + t_msg   (west upwind, cross-rank)
       C(i,j-1,u) + t_msg   (south upwind, cross-rank)
       C(i,j,u-1)           (same rank, pipeline order).
     Since each rank's chunks form a chain, the dependency DAG's
     longest path equals the list-schedule makespan, so the DP is
     exact. Scanning i, then j, then u ascending lets one plane
     [py x work_units] hold exactly the values each max needs: at the
     moment (i,j,u) is computed, cell (j,u) still holds row i-1's
     value (west), cell (j-1,u) already holds row i's value (south),
     and cell (j,u-1) holds this rank's previous chunk. *)
  let completion = Array.make_matrix py work_units 0. in
  for i = 0 to px - 1 do
    for j = 0 to py - 1 do
      for u = 0 to work_units - 1 do
        let from_west = if i = 0 then 0. else completion.(j).(u) +. t_msg in
        let from_south = if j = 0 then 0. else completion.(j - 1).(u) +. t_msg in
        let from_self = if u = 0 then 0. else completion.(j).(u - 1) in
        let ready = Float.max from_west (Float.max from_south from_self) in
        completion.(j).(u) <- ready +. t_chunk
      done
    done
  done;
  completion.(py - 1).(work_units - 1)

let makespan_taskgraph ~px ~py ~work_units ~t_chunk ~t_msg =
  check_args ~px ~py ~work_units ~t_chunk ~t_msg;
  let id i j u = (((i * py) + j) * work_units) + u in
  let tasks =
    Array.init (px * py * work_units) (fun k ->
        let u = k mod work_units in
        let j = k / work_units mod py in
        let i = k / (work_units * py) in
        let deps = ref [] in
        if i > 0 then deps := (id (i - 1) j u, t_msg) :: !deps;
        if j > 0 then deps := (id i (j - 1) u, t_msg) :: !deps;
        if u > 0 then deps := (id i j (u - 1), 0.) :: !deps;
        { Taskgraph.duration = t_chunk; resource = (i * py) + j; deps = Array.of_list !deps })
  in
  Taskgraph.simulate ~n_resources:(px * py) tasks

let pipeline_efficiency ~px ~py ~work_units ~t_chunk ~t_msg =
  let total = makespan ~px ~py ~work_units ~t_chunk ~t_msg in
  if total <= 0. then 1. else float_of_int work_units *. t_chunk /. total
