type task = { duration : float; resource : int; deps : (int * float) array }
type result = { makespan : float; completion : float array; events : int }

type resource_state = { ready : int Heap.t; mutable busy : bool }

let simulate ~n_resources tasks =
  if n_resources < 1 then invalid_arg "Taskgraph.simulate: need at least one resource";
  let n = Array.length tasks in
  Array.iteri
    (fun i task ->
      if task.duration < 0. then invalid_arg "Taskgraph.simulate: negative duration";
      if task.resource < 0 || task.resource >= n_resources then
        invalid_arg "Taskgraph.simulate: resource out of range";
      Array.iter
        (fun (dep, latency) ->
          if dep < 0 || dep >= i then
            invalid_arg "Taskgraph.simulate: dependencies must point to earlier tasks";
          if latency < 0. then invalid_arg "Taskgraph.simulate: negative latency")
        task.deps)
    tasks;
  let engine = Engine.create () in
  let completion = Array.make n nan in
  let pending = Array.map (fun task -> Array.length task.deps) tasks in
  let successors = Array.make n [] in
  Array.iteri
    (fun i task -> Array.iter (fun (dep, latency) -> successors.(dep) <- (i, latency) :: successors.(dep)) task.deps)
    tasks;
  let resources = Array.init n_resources (fun _ -> { ready = Heap.create (); busy = false }) in
  (* Earliest start of a task: the max over its incoming edges of the
     predecessor's completion plus that edge's (cross-resource)
     latency, accumulated as predecessors finish. *)
  let earliest_start = Array.make n 0. in
  let rec try_start engine r =
    let state = resources.(r) in
    if not state.busy then begin
      match Heap.pop state.ready with
      | None -> ()
      | Some (_, i) ->
          state.busy <- true;
          Engine.schedule_after engine ~delay:tasks.(i).duration (fun engine ->
              completion.(i) <- Engine.now engine;
              state.busy <- false;
              List.iter
                (fun (succ, latency) ->
                  let cross = tasks.(succ).resource <> tasks.(i).resource in
                  let via_edge = Engine.now engine +. (if cross then latency else 0.) in
                  if via_edge > earliest_start.(succ) then earliest_start.(succ) <- via_edge;
                  pending.(succ) <- pending.(succ) - 1;
                  if pending.(succ) = 0 then mark_ready engine succ ~at:earliest_start.(succ))
                successors.(i);
              try_start engine r)
    end
  and mark_ready engine i ~at =
    Engine.schedule engine ~at (fun engine ->
        let r = tasks.(i).resource in
        Heap.push resources.(r).ready (Engine.now engine) i;
        try_start engine r)
  in
  Array.iteri (fun i task -> if Array.length task.deps = 0 then mark_ready engine i ~at:0.) tasks;
  let makespan = Engine.run engine in
  (* Every task must have run; a cycle is impossible given the
     topological-order check, so this is an internal invariant. *)
  Array.iter (fun c -> assert (not (Float.is_nan c))) completion;
  { makespan; completion; events = Engine.events_processed engine }
