(** Binary min-heap keyed by float priority — the event queue of the
    discrete-event {!Engine}. *)

type 'a t

val create : unit -> 'a t
val length : 'a t -> int
val is_empty : 'a t -> bool
val push : 'a t -> float -> 'a -> unit

val pop : 'a t -> (float * 'a) option
(** Remove and return the minimum-key entry. Entries with equal keys
    pop in unspecified relative order. *)

val peek : 'a t -> (float * 'a) option
val clear : 'a t -> unit
