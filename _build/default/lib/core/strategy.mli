(** Candidate-selection strategies (paper §III-D).

    [Ranking] scores every not-yet-evaluated configuration of a finite
    space and picks the best — exhaustive, duplicate-free, and the
    paper's default for the discrete HPC spaces. [Proposal] samples
    candidates from the good density pg (applicable to continuous or
    huge spaces) and picks the best-scoring draw; duplicates with the
    history are re-drawn a bounded number of times and then allowed
    (a repeated evaluation is harmless, merely uninformative). *)

type t =
  | Ranking
  | Proposal of { n_candidates : int }

val default : t
(** [Ranking]. *)

val select :
  t ->
  rng:Prng.Rng.t ->
  surrogate:Surrogate.t ->
  pool:Param.Config.t array ->
  evaluated:unit Param.Config.Table.t ->
  Param.Config.t option
(** Pick the next configuration to evaluate, or [None] when the pool
    is exhausted ([Ranking] on a fully-evaluated space).

    [pool] is the enumerated space for [Ranking] (ignored by
    [Proposal]); [evaluated] is the already-evaluated set (values are
    unused; the table is a set). *)

val select_many :
  t ->
  k:int ->
  rng:Prng.Rng.t ->
  surrogate:Surrogate.t ->
  pool:Param.Config.t array ->
  evaluated:unit Param.Config.Table.t ->
  Param.Config.t list
(** Up to [k] distinct configurations with the highest expected
    improvement, best first — one surrogate refit amortized over a
    batch of evaluations (e.g. to launch [k] application runs in
    parallel). Fewer than [k] are returned when the pool runs out.
    Requires [k >= 1]. *)
