type ranking = (string * float) array

let of_surrogate surrogate =
  let space = Surrogate.space surrogate in
  let scores =
    Array.init (Param.Space.n_params space) (fun i ->
        (Param.Spec.name (Param.Space.spec space i), Surrogate.param_js_divergence surrogate i))
  in
  Array.sort (fun (_, a) (_, b) -> compare b a) scores;
  scores

let of_observations ?options space observations =
  of_surrogate (Surrogate.fit ?options space observations)

let spearman a b =
  let n = Array.length a in
  if n <> Array.length b then invalid_arg "Importance.spearman: rankings of different sizes";
  if n = 0 then invalid_arg "Importance.spearman: empty rankings";
  let rank_of r = Array.mapi (fun i (name, _) -> (name, i)) r in
  let rb = rank_of b in
  let position name =
    match Array.find_opt (fun (n', _) -> n' = name) rb with
    | Some (_, i) -> i
    | None -> invalid_arg "Importance.spearman: parameter sets differ"
  in
  let d2 = ref 0. in
  Array.iteri
    (fun ia (name, _) ->
      let ib = position name in
      let d = float_of_int (ia - ib) in
      d2 := !d2 +. (d *. d))
    a;
  if n = 1 then 1.
  else begin
    let nf = float_of_int n in
    1. -. (6. *. !d2 /. (nf *. ((nf *. nf) -. 1.)))
  end

let to_string ranking =
  String.concat ","
    (Array.to_list (Array.map (fun (name, s) -> Printf.sprintf "%s(%.2f)" name s) ranking))
