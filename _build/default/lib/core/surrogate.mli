(** The HiPerBOt surrogate model (paper §II, §III).

    Observations are split at the α-quantile of their objective values
    into "good" (best α fraction) and "bad"; a factorized density is
    estimated for each side (pg, pb). The expected improvement of a
    candidate is, up to the monotone transform of eq. 5, the ratio
    pg(x)/pb(x) — candidates likely under the good density and
    unlikely under the bad one are worth evaluating next. *)

type options = {
  alpha : float;  (** quantile threshold for the good/bad split (paper: 0.2) *)
  density : Density.options;
}

val default_options : options

type t

val fit :
  ?options:options ->
  ?prior:t * float ->
  ?extra_bad:Param.Config.t array ->
  Param.Space.t ->
  (Param.Config.t * float) array ->
  t
(** [fit space observations] estimates the surrogate. At least one
    observation is required. [prior], when given, mixes a surrogate
    fitted on a source domain into both densities with the given
    weight (transfer learning, paper eqs. 9-10); the prior must be
    over the same space.

    [extra_bad] are configurations with no objective value at all —
    crashed or invalid runs. They join the bad density unconditionally
    (they are certainly not good) without affecting the quantile
    threshold, steering selection away from the failing region. *)

val space : t -> Param.Space.t
val alpha : t -> float
val threshold : t -> float
(** The α-quantile objective value separating good from bad. *)

val n_good : t -> int
val n_bad : t -> int

val good_density : t -> int -> Density.t
(** Per-parameter good density pg,xi. *)

val bad_density : t -> int -> Density.t

val good_pdf : t -> Param.Config.t -> float
(** Factorized pg(x) (eq. 7). *)

val bad_pdf : t -> Param.Config.t -> float

val score : t -> Param.Config.t -> float
(** The density ratio pg(x)/pb(x) — the quantity maximized by the
    selection strategies. Strictly positive. *)

val expected_improvement : t -> Param.Config.t -> float
(** Eq. 5 exactly: [1 / (alpha + (pb/pg) (1 - alpha))]. A monotone
    transform of {!score}, exposed for reporting (Fig. 1b). *)

val sample_good : t -> Prng.Rng.t -> Param.Config.t
(** Draw a configuration from pg — the Proposal strategy's generator
    (paper §III-D). *)

val param_js_divergence : t -> int -> float
(** JS divergence between pg,xi and pb,xi for parameter [i] — the
    parameter-importance measure of §VI. *)
