lib/core/strategy.mli: Param Prng Surrogate
