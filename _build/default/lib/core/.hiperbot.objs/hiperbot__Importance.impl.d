lib/core/importance.ml: Array Param Printf String Surrogate
