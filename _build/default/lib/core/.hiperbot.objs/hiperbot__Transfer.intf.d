lib/core/transfer.mli: Param Prng Surrogate Tuner
