lib/core/density.mli: Param Prng
