lib/core/tuner.ml: Array List Option Param Prng Strategy Surrogate
