lib/core/tuner.mli: Param Prng Strategy Surrogate
