lib/core/surrogate.mli: Density Param Prng
