lib/core/density.ml: Array Float Param Prng Stats Stdlib
