lib/core/strategy.ml: Array List Param Surrogate
