lib/core/surrogate.ml: Array Density Option Param Stats
