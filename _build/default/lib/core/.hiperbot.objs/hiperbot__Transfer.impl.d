lib/core/transfer.ml: Array Surrogate Tuner
