lib/core/importance.mli: Param Surrogate
