let prior_of_source ?options space source = Surrogate.fit ?options space source

let run ?(options = Tuner.default_options) ?(weight = 1.0) ?on_evaluation ~rng ~space ~source
    ~objective ~budget () =
  if weight < 0. then invalid_arg "Transfer.run: negative prior weight";
  if Array.length source = 0 then invalid_arg "Transfer.run: empty source data";
  let prior = prior_of_source ~options:options.Tuner.surrogate space source in
  let options = { options with Tuner.prior = Some (prior, weight) } in
  Tuner.run ~options ?on_evaluation ~rng ~space ~objective ~budget ()
