type options = { alpha : float; density : Density.options }

let default_options = { alpha = 0.2; density = Density.default_options }

type t = {
  space : Param.Space.t;
  options : options;
  threshold : float;
  good : Density.t array;
  bad : Density.t array;
  n_good : int;
  n_bad : int;
}

let fit ?(options = default_options) ?prior ?(extra_bad = [||]) space observations =
  if Array.length observations = 0 then invalid_arg "Surrogate.fit: no observations";
  Array.iter
    (fun c ->
      if not (Param.Space.validate space c) then invalid_arg "Surrogate.fit: invalid configuration")
    extra_bad;
  if options.alpha <= 0. || options.alpha >= 1. then invalid_arg "Surrogate.fit: alpha outside (0, 1)";
  Array.iter
    (fun (c, _) ->
      if not (Param.Space.validate space c) then invalid_arg "Surrogate.fit: invalid configuration")
    observations;
  (match prior with
  | Some (p, w) ->
      if p.space != space && Param.Space.specs p.space <> Param.Space.specs space then
        invalid_arg "Surrogate.fit: prior fitted on a different space";
      if w < 0. then invalid_arg "Surrogate.fit: negative prior weight"
  | None -> ());
  let ys = Array.map snd observations in
  let threshold, good_idx, bad_idx = Stats.Quantile.split_at_quantile ys options.alpha in
  let n_params = Param.Space.n_params space in
  let values_of idx i = Array.map (fun j -> (fst observations.(j)).(i)) idx in
  let fit_side values prior_side i =
    let spec = Param.Space.spec space i in
    let d = Density.fit ~options:options.density spec values in
    match prior_side with
    | None -> d
    | Some (p, w) -> Density.merge_prior ~prior:(p i) ~w d
  in
  let prior_good = Option.map (fun (p, w) -> ((fun i -> p.good.(i)), w)) prior in
  let prior_bad = Option.map (fun (p, w) -> ((fun i -> p.bad.(i)), w)) prior in
  let bad_values i =
    Array.append (values_of bad_idx i) (Array.map (fun c -> c.(i)) extra_bad)
  in
  {
    space;
    options;
    threshold;
    good = Array.init n_params (fun i -> fit_side (values_of good_idx i) prior_good i);
    bad = Array.init n_params (fun i -> fit_side (bad_values i) prior_bad i);
    n_good = Array.length good_idx;
    n_bad = Array.length bad_idx + Array.length extra_bad;
  }

let space t = t.space
let alpha t = t.options.alpha
let threshold t = t.threshold
let n_good t = t.n_good
let n_bad t = t.n_bad

let check_param t i =
  if i < 0 || i >= Array.length t.good then invalid_arg "Surrogate: parameter index out of range"

let good_density t i =
  check_param t i;
  t.good.(i)

let bad_density t i =
  check_param t i;
  t.bad.(i)

let factorized densities config =
  let acc = ref 1. in
  Array.iteri (fun i d -> acc := !acc *. Density.pdf d config.(i)) densities;
  !acc

let check_config t config =
  if not (Param.Space.validate t.space config) then invalid_arg "Surrogate: invalid configuration"

let good_pdf t config =
  check_config t config;
  factorized t.good config

let bad_pdf t config =
  check_config t config;
  factorized t.bad config

(* Computed in log space: with many parameters the factorized
   densities underflow well before the ratio does. *)
let log_ratio t config =
  let acc = ref 0. in
  Array.iteri
    (fun i d -> acc := !acc +. log (Density.pdf d config.(i)) -. log (Density.pdf t.bad.(i) config.(i)))
    t.good;
  !acc

let score t config =
  check_config t config;
  exp (log_ratio t config)

let expected_improvement t config =
  let ratio = score t config in
  (* Eq. 5 with pb/pg = 1/ratio. *)
  1. /. (t.options.alpha +. ((1. -. t.options.alpha) /. ratio))

let sample_good t rng = Array.map (fun d -> Density.sample d rng) t.good

let param_js_divergence t i =
  check_param t i;
  Density.js_divergence (Param.Space.spec t.space i) t.good.(i) t.bad.(i)
