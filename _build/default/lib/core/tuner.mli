(** The HiPerBOt iterative tuning loop (paper §III-C).

    1. Evaluate [n_init] configurations drawn uniformly at random.
    2. Fit the surrogate on the observation history.
    3. Select the candidate(s) maximizing expected improvement.
    4. Evaluate, append to the history; repeat 2-4 until the
       evaluation budget is exhausted or the early-stop criterion
       fires.

    The [prior] option turns the same loop into the transfer-learning
    variant (§III-E): a surrogate fitted on source-domain data is
    mixed into every refit with weight [prior_weight]. [batch_size]
    amortizes one refit over several evaluations (e.g. to run several
    configurations in parallel on a cluster); [early_stop] implements
    the paper's sample-quality termination condition. *)

type options = {
  n_init : int;  (** random initial samples (paper: 20) *)
  surrogate : Surrogate.options;
  strategy : Strategy.t;
  prior : (Surrogate.t * float) option;  (** transfer prior and its weight *)
  batch_size : int;  (** evaluations per surrogate refit (default 1) *)
  early_stop : int option;
      (** stop after this many consecutive guided evaluations without
          improving the best observed objective (default [None]:
          run the full budget) *)
}

val default_options : options
(** n_init 20, surrogate defaults (alpha 0.2), [Ranking], no prior,
    batch 1, no early stop. *)

type result = {
  history : (Param.Config.t * float) array;
      (** every evaluation performed by this run, in order (initial
          samples first; warm-start observations are excluded) *)
  best_config : Param.Config.t;
  best_value : float;
  trajectory : float array;
      (** best-so-far objective after each evaluation;
          [trajectory.(i)] covers [history.(0..i)] *)
  final_surrogate : Surrogate.t option;
      (** the last fitted surrogate (None when the budget was too
          small to fit one, i.e. no iterative step ran) *)
  stopped_early : bool;  (** the [early_stop] criterion ended the run *)
  failures : Param.Config.t array;
      (** configurations whose evaluation failed (only populated by
          {!run_resilient}) *)
}

val run :
  ?options:options ->
  ?warm_start:(Param.Config.t * float) array ->
  ?candidates:Param.Config.t array ->
  ?on_evaluation:(int -> Param.Config.t -> float -> unit) ->
  rng:Prng.Rng.t ->
  space:Param.Space.t ->
  objective:(Param.Config.t -> float) ->
  budget:int ->
  unit ->
  result
(** [run ~rng ~space ~objective ~budget ()] performs at most [budget]
    evaluations of [objective] (warm-start observations do not count
    against the budget; duplicate random initial draws are evaluated
    once). Requires [budget >= 1]. [on_evaluation i config value] is
    called after each evaluation with its 0-based index.

    [candidates] restricts both initialization and selection to an
    explicit configuration set — e.g. the measured rows of a study
    loaded with {!Dataset.Infer.table_of_csv}, which usually cover
    only part of the cross-product space. It must be non-empty,
    duplicate-free, and is only supported with the [Ranking]
    strategy.

    With the [Ranking] strategy the space must be finite (unless
    [candidates] is given); if the budget exceeds the candidate count
    the run stops early when every configuration has been
    evaluated. *)

val run_resilient :
  ?options:options ->
  ?warm_start:(Param.Config.t * float) array ->
  ?candidates:Param.Config.t array ->
  ?on_evaluation:(int -> Param.Config.t -> float -> unit) ->
  ?on_failure:(int -> Param.Config.t -> unit) ->
  rng:Prng.Rng.t ->
  space:Param.Space.t ->
  objective:(Param.Config.t -> float option) ->
  budget:int ->
  unit ->
  result
(** Like {!run} for objectives that can fail — builds that crash,
    invalid parameter combinations, timed-out runs. A [None] from the
    objective consumes budget, is never retried, and joins the bad
    density of every later surrogate fit (it is certainly not a good
    configuration), steering selection away from the failing region.
    Failed configurations appear in [failures], not [history].
    Raises [Failure] if every evaluation failed (there is then no
    best configuration to report). *)
