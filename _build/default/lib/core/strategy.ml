type t = Ranking | Proposal of { n_candidates : int }

let default = Ranking
let max_duplicate_redraws = 20

(* Keep the k best (config, score) pairs seen so far, smallest first
   in [heap]-free form: a sorted association list is fine for the
   small k used in batch selection. *)
module Topk = struct
  type 'a t = { k : int; mutable entries : ('a * float) list; mutable size : int }

  let create k = { k; entries = []; size = 0 }

  let offer t value score =
    let worst_kept () = match t.entries with (_, s) :: _ -> s | [] -> neg_infinity in
    if t.size < t.k || score > worst_kept () then begin
      let rec insert = function
        | [] -> [ (value, score) ]
        | (v, s) :: rest when s >= score -> (value, score) :: (v, s) :: rest
        | pair :: rest -> pair :: insert rest
      in
      t.entries <- insert t.entries;
      if t.size = t.k then t.entries <- List.tl t.entries else t.size <- t.size + 1
    end

  let to_list_desc t = List.rev_map fst t.entries
end

let select_many_ranking ~k ~surrogate ~pool ~evaluated =
  let top = Topk.create k in
  Array.iter
    (fun config ->
      if not (Param.Config.Table.mem evaluated config) then
        Topk.offer top config (Surrogate.score surrogate config))
    pool;
  Topk.to_list_desc top

let select_many_proposal ~k ~rng ~surrogate ~evaluated ~n_candidates =
  let chosen = Param.Config.Table.create k in
  let draw () =
    let rec fresh attempts =
      let c = Surrogate.sample_good surrogate rng in
      if attempts >= max_duplicate_redraws
         || not (Param.Config.Table.mem evaluated c || Param.Config.Table.mem chosen c)
      then c
      else fresh (attempts + 1)
    in
    fresh 0
  in
  let rec pick acc remaining =
    if remaining = 0 then List.rev acc
    else begin
      let top = Topk.create 1 in
      for _ = 1 to n_candidates do
        let c = draw () in
        Topk.offer top c (Surrogate.score surrogate c)
      done;
      match Topk.to_list_desc top with
      | [] -> List.rev acc
      | best :: _ ->
          Param.Config.Table.replace chosen best ();
          pick (best :: acc) (remaining - 1)
    end
  in
  pick [] k

let select_many t ~k ~rng ~surrogate ~pool ~evaluated =
  if k < 1 then invalid_arg "Strategy.select_many: k must be at least 1";
  match t with
  | Ranking -> select_many_ranking ~k ~surrogate ~pool ~evaluated
  | Proposal { n_candidates } ->
      if n_candidates <= 0 then invalid_arg "Strategy.select: non-positive candidate count";
      select_many_proposal ~k ~rng ~surrogate ~evaluated ~n_candidates

let select t ~rng ~surrogate ~pool ~evaluated =
  match select_many t ~k:1 ~rng ~surrogate ~pool ~evaluated with
  | [] -> None
  | best :: _ -> Some best
