type status = Ok of float | Failed
type entry = { index : int; config : Param.Config.t; status : status }
type t = { name : string; seed : int; space : Param.Space.t; entries : entry array }

let create ~name ~seed ~space entries =
  let entries = Array.of_list entries in
  Array.sort (fun a b -> compare a.index b.index) entries;
  Array.iteri
    (fun i e ->
      if not (Param.Space.validate space e.config) then
        invalid_arg "Runlog.create: invalid configuration";
      if i > 0 && entries.(i - 1).index = e.index then invalid_arg "Runlog.create: duplicate index")
    entries;
  { name; seed; space; entries }

type recorder = { r_name : string; r_seed : int; r_space : Param.Space.t; mutable acc : entry list }

let recorder ~name ~seed ~space = { r_name = name; r_seed = seed; r_space = space; acc = [] }

let record_evaluation r index config value =
  r.acc <- { index; config; status = Ok value } :: r.acc

let record_failure r index config = r.acc <- { index; config; status = Failed } :: r.acc
let finish r = create ~name:r.r_name ~seed:r.r_seed ~space:r.r_space r.acc

let history t =
  Array.of_list
    (List.filter_map
       (fun e -> match e.status with Ok y -> Some (e.config, y) | Failed -> None)
       (Array.to_list t.entries))

let best t =
  Array.fold_left
    (fun acc e ->
      match (e.status, acc) with
      | Failed, _ -> acc
      | Ok y, Some (_, by) when by <= y -> acc
      | Ok y, _ -> Some (e.config, y))
    None t.entries

(* ---- serialization ---- *)

let spec_header spec =
  let name = Param.Spec.name spec in
  if String.contains name '=' || String.contains name ',' || String.contains name ':' then
    invalid_arg "Runlog: parameter names may not contain '=', ':' or ','";
  match Param.Spec.domain spec with
  | Param.Spec.Categorical labels ->
      Array.iter
        (fun l ->
          if String.contains l ',' then invalid_arg "Runlog: labels may not contain ','")
        labels;
      Printf.sprintf "#spec %s=cat:%s" name (String.concat "," (Array.to_list labels))
  | Param.Spec.Ordinal levels ->
      Printf.sprintf "#spec %s=ord:%s" name
        (String.concat "," (Array.to_list (Array.map (Printf.sprintf "%.17g") levels)))
  | Param.Spec.Continuous _ -> invalid_arg "Runlog: continuous parameters are not supported"

let to_string t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "#runlog v1\n";
  Buffer.add_string buf (Printf.sprintf "#name %s\n" t.name);
  Buffer.add_string buf (Printf.sprintf "#seed %d\n" t.seed);
  let specs = Param.Space.specs t.space in
  Array.iter (fun spec -> Buffer.add_string buf (spec_header spec ^ "\n")) specs;
  Buffer.add_string buf "index";
  Array.iter (fun spec -> Buffer.add_string buf ("," ^ Param.Spec.name spec)) specs;
  Buffer.add_string buf ",objective,status\n";
  Array.iter
    (fun e ->
      Buffer.add_string buf (string_of_int e.index);
      Array.iteri
        (fun i v -> Buffer.add_string buf ("," ^ Param.Spec.value_to_string specs.(i) v))
        e.config;
      (match e.status with
      | Ok y -> Buffer.add_string buf (Printf.sprintf ",%.17g,ok" y)
      | Failed -> Buffer.add_string buf ",,failed");
      Buffer.add_char buf '\n')
    t.entries;
  Buffer.contents buf

let parse_spec_header line =
  (* "#spec name=kind:v1,v2,..." *)
  match String.index_opt line '=' with
  | None -> failwith "Runlog: malformed #spec line"
  | Some eq ->
      let name = String.sub line 6 (eq - 6) in
      let rest = String.sub line (eq + 1) (String.length line - eq - 1) in
      let kind, values =
        match String.index_opt rest ':' with
        | None -> failwith "Runlog: malformed #spec line"
        | Some colon ->
            ( String.sub rest 0 colon,
              String.split_on_char ',' (String.sub rest (colon + 1) (String.length rest - colon - 1)) )
      in
      (match kind with
      | "cat" -> Param.Spec.categorical name values
      | "ord" ->
          Param.Spec.ordinal_floats name
            (List.map
               (fun s ->
                 match float_of_string_opt s with
                 | Some f -> f
                 | None -> failwith "Runlog: malformed ordinal level")
               values)
      | _ -> failwith (Printf.sprintf "Runlog: unknown spec kind %S" kind))

let value_of_string spec s =
  match Param.Spec.domain spec with
  | Param.Spec.Categorical labels ->
      let rec find i =
        if i = Array.length labels then failwith (Printf.sprintf "Runlog: unknown label %S" s)
        else if labels.(i) = s then Param.Value.Categorical i
        else find (i + 1)
      in
      find 0
  | Param.Spec.Ordinal levels ->
      let x =
        match float_of_string_opt s with
        | Some x -> x
        | None -> failwith (Printf.sprintf "Runlog: malformed level %S" s)
      in
      let rec find i =
        if i = Array.length levels then failwith (Printf.sprintf "Runlog: unknown level %S" s)
        else if Float.abs (levels.(i) -. x) <= 1e-9 *. Float.max 1. (Float.abs levels.(i)) then
          Param.Value.Ordinal i
        else find (i + 1)
      in
      find 0
  | Param.Spec.Continuous _ -> assert false

let of_string text =
  let lines = String.split_on_char '\n' text |> List.filter (fun l -> String.trim l <> "") in
  match lines with
  | magic :: rest when String.trim magic = "#runlog v1" ->
      let name = ref "" and seed = ref 0 and specs = ref [] in
      let rec headers = function
        | line :: rest when String.length line > 0 && line.[0] = '#' ->
            (if String.length line > 6 && String.sub line 0 6 = "#name " then
               name := String.sub line 6 (String.length line - 6)
             else if String.length line > 6 && String.sub line 0 6 = "#seed " then
               seed :=
                 (match int_of_string_opt (String.trim (String.sub line 6 (String.length line - 6))) with
                 | Some s -> s
                 | None -> failwith "Runlog: malformed #seed line")
             else if String.length line > 6 && String.sub line 0 6 = "#spec " then
               specs := parse_spec_header line :: !specs
             else failwith (Printf.sprintf "Runlog: unknown header %S" line));
            headers rest
        | rest -> rest
      in
      let body = headers rest in
      let space = Param.Space.make (List.rev !specs) in
      let spec_arr = Param.Space.specs space in
      let n_params = Array.length spec_arr in
      let parse_row line =
        let fields = String.split_on_char ',' line |> Array.of_list in
        if Array.length fields <> n_params + 3 then
          failwith (Printf.sprintf "Runlog: row has %d fields, expected %d" (Array.length fields) (n_params + 3));
        let index =
          match int_of_string_opt fields.(0) with
          | Some i -> i
          | None -> failwith "Runlog: malformed index"
        in
        let config = Array.init n_params (fun i -> value_of_string spec_arr.(i) fields.(i + 1)) in
        let status =
          match String.trim fields.(n_params + 2) with
          | "ok" -> begin
              match float_of_string_opt fields.(n_params + 1) with
              | Some y -> Ok y
              | None -> failwith "Runlog: ok row without objective"
            end
          | "failed" -> Failed
          | other -> failwith (Printf.sprintf "Runlog: unknown status %S" other)
        in
        { index; config; status }
      in
      (match body with
      | [] -> failwith "Runlog: missing column header"
      | _header :: rows -> create ~name:!name ~seed:!seed ~space (List.map parse_row rows))
  | _ -> failwith "Runlog: missing '#runlog v1' magic"

let save t path =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc (to_string t))

let load path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> of_string (really_input_string ic (in_channel_length ic)))
