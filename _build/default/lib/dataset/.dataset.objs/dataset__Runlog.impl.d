lib/dataset/runlog.ml: Array Buffer Float Fun List Param Printf String
