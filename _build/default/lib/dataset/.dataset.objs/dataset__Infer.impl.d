lib/dataset/infer.ml: Array Hashtbl List Option Param Printf String Table
