lib/dataset/table.ml: Array Buffer Float List Param Printf Stats String
