lib/dataset/infer.mli: Param Table
