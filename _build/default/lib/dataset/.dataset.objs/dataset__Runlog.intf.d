lib/dataset/runlog.mli: Param
