lib/dataset/table.mli: Param
