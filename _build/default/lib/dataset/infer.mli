(** Parameter-space inference from raw CSV measurement data.

    Lets a user bring their own study — a CSV whose columns are
    parameter settings and whose last column is the measured objective
    — without declaring a {!Param.Space.t} by hand:

    - a column whose values all parse as numbers becomes an ordinal
      parameter over its sorted distinct values;
    - any other column becomes a categorical parameter over its
      distinct labels (in order of first appearance).

    The resulting table contains exactly the CSV's rows, which is
    usually a subset of the full cross-product space; tuners then
    treat missing configurations as unavailable (the table's
    [objective_fn] raises [Not_found]), so CSV-driven tuning should
    restrict candidate pools to the table's rows (see
    {!Table.configs}). *)

val space_of_csv : string -> Param.Space.t
(** Infer the space from the header and value columns. Raises
    [Failure] on empty input, duplicate headers, or rows of
    inconsistent width. *)

val table_of_csv : name:string -> string -> Table.t
(** Infer the space, then load the rows. The last column is the
    objective and must be numeric. Duplicate configurations keep the
    first occurrence and drop the rest (repeat measurements are
    common in real studies). *)
