(** Persistent records of tuning runs.

    A run log captures everything needed to audit or replay a tuning
    session: the parameter space, the seed, and every evaluation in
    order (including failed ones). The on-disk format is a small
    self-describing text file — `#` header lines declaring the space,
    then CSV rows — so logs are diffable and greppable:

    {v
    #runlog v1
    #name lulesh-tune
    #seed 42
    #spec level=cat:O0,O1,O2,O3
    #spec unroll=ord:1,2,4
    index,level,unroll,objective,status
    0,O3,2,4.12,ok
    1,O0,1,,failed
    v} *)

type status = Ok of float | Failed

type entry = { index : int; config : Param.Config.t; status : status }

type t = {
  name : string;
  seed : int;
  space : Param.Space.t;
  entries : entry array;  (** in evaluation order *)
}

val create : name:string -> seed:int -> space:Param.Space.t -> entry list -> t
(** Entries are sorted by index; indices must be distinct and configs
    valid for the space ([Invalid_argument] otherwise). *)

type recorder

val recorder : name:string -> seed:int -> space:Param.Space.t -> recorder
(** A recorder whose callbacks plug into
    {!Hiperbot.Tuner.run}/[run_resilient]'s [on_evaluation] and
    [on_failure]. *)

val record_evaluation : recorder -> int -> Param.Config.t -> float -> unit
val record_failure : recorder -> int -> Param.Config.t -> unit

val finish : recorder -> t
(** Snapshot the recorded entries (the recorder stays usable). *)

val history : t -> (Param.Config.t * float) array
(** Successful evaluations in order — the shape the metrics layer and
    {!Hiperbot.Tuner.run}'s [warm_start] expect. *)

val best : t -> (Param.Config.t * float) option
(** Best successful evaluation, [None] if all failed. *)

val to_string : t -> string
(** Serialize to the format above. Continuous parameters are not
    supported (the reproduction's spaces are finite); raises
    [Invalid_argument] on a continuous spec. *)

val of_string : string -> t
(** Parse {!to_string}'s output. Raises [Failure] on malformed
    input. *)

val save : t -> string -> unit
(** Write to a file path. *)

val load : string -> t
