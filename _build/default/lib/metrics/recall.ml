type good_set = { test : Param.Config.t -> bool; count : int }

let percentile_good_set table l =
  let test, count = Dataset.Table.good_set_percentile table l in
  { test; count }

let tolerance_good_set table gamma =
  let test, count = Dataset.Table.good_set_tolerance table gamma in
  { test; count }

let recall_prefix good history n =
  if n < 0 || n > Array.length history then invalid_arg "Recall.recall_prefix: prefix out of range";
  if good.count = 0 then 0.
  else begin
    (* Histories may contain repeated configurations (the Proposal
       strategy re-evaluates after bounded duplicate redraws); each
       good configuration counts once. *)
    let seen = Param.Config.Table.create n in
    let hits = ref 0 in
    for i = 0 to n - 1 do
      let c = fst history.(i) in
      if good.test c && not (Param.Config.Table.mem seen c) then begin
        Param.Config.Table.replace seen c ();
        incr hits
      end
    done;
    float_of_int !hits /. float_of_int good.count
  end

let recall good history = recall_prefix good history (Array.length history)

let best_prefix history n =
  if n < 1 || n > Array.length history then invalid_arg "Recall.best_prefix: prefix out of range";
  let best = ref (snd history.(0)) in
  for i = 1 to n - 1 do
    if snd history.(i) < !best then best := snd history.(i)
  done;
  !best
