lib/metrics/recall.mli: Dataset Param
