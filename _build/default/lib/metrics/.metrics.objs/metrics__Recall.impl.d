lib/metrics/recall.ml: Array Dataset Param
