lib/metrics/runner.mli: Baselines Prng Recall
