lib/metrics/runner.ml: Array Baselines Prng Recall Stats
