type t = Relu | Tanh | Identity

let apply t x =
  match t with Relu -> if x > 0. then x else 0. | Tanh -> tanh x | Identity -> x

let derivative t x =
  match t with
  | Relu -> if x > 0. then 1. else 0.
  | Tanh ->
      let th = tanh x in
      1. -. (th *. th)
  | Identity -> 1.

let name = function Relu -> "relu" | Tanh -> "tanh" | Identity -> "identity"
