lib/nn/activation.mli:
