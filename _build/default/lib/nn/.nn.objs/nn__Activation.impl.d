lib/nn/activation.ml:
