lib/nn/mlp.mli: Activation Prng
