lib/nn/mlp.ml: Activation Array Linalg Prng
