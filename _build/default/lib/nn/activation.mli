(** Activation functions with derivatives, for the [nn] layers. *)

type t = Relu | Tanh | Identity

val apply : t -> float -> float
val derivative : t -> float -> float
(** Derivative as a function of the pre-activation input. *)

val name : t -> string
