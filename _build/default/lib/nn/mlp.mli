(** Multi-layer perceptron regressor (scalar output), trained with
    mini-batch Adam on mean-squared error.

    This is the substrate for the PerfNet transfer-learning baseline
    (paper ref [11]): train a regressor on abundant source-domain
    samples, then fine-tune the same weights on the few target-domain
    samples (see {!fine_tune}), and rank candidate configurations by
    predicted performance.

    Everything is deterministic given the [Prng.Rng.t] passed at
    creation and training time. *)

type t

val create : rng:Prng.Rng.t -> layer_sizes:int list -> ?hidden:Activation.t -> unit -> t
(** [create ~rng ~layer_sizes:[d_in; h1; ...; 1] ()] builds a network
    with He-initialized weights. The last size must be 1 (scalar
    regression); at least one weight layer is required. [hidden]
    defaults to [Relu]; the output layer is always linear. *)

val copy : t -> t
(** Deep copy (weights and optimizer state), for fine-tuning without
    destroying the source model. *)

val n_parameters : t -> int
val predict : t -> float array -> float
val predict_batch : t -> float array array -> float array

type training = {
  epochs : int;
  batch_size : int;
  learning_rate : float;
  weight_decay : float;  (** L2 coefficient, 0 to disable *)
}

val default_training : training
(** 200 epochs, batch 32, lr 1e-3, no weight decay. *)

val train : t -> rng:Prng.Rng.t -> ?config:training -> inputs:float array array -> targets:float array -> unit -> float
(** Train in place; returns the final epoch's mean training loss.
    Raises [Invalid_argument] on empty data or input/target length
    mismatch. *)

val fine_tune : t -> rng:Prng.Rng.t -> ?config:training -> inputs:float array array -> targets:float array -> unit -> float
(** {!train} with the Adam moments reset — continue from the current
    weights on new data (the PerfNet transfer step). *)

val mse : t -> inputs:float array array -> targets:float array -> float
