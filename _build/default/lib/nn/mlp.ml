module Mat = Linalg.Mat

type layer = {
  w : Mat.t;
  b : float array;
  act : Activation.t;
  (* Adam first/second moments, reset by fine_tune. *)
  mutable mw : Mat.t;
  mutable vw : Mat.t;
  mutable mb : float array;
  mutable vb : float array;
}

type t = { layers : layer array; mutable step : int }

type training = { epochs : int; batch_size : int; learning_rate : float; weight_decay : float }

let default_training = { epochs = 200; batch_size = 32; learning_rate = 1e-3; weight_decay = 0. }

let make_layer ~rng ~fan_in ~fan_out ~act =
  let scale = sqrt (2. /. float_of_int fan_in) in
  {
    w = Mat.init fan_out fan_in (fun _ _ -> scale *. Prng.Rng.normal rng);
    b = Array.make fan_out 0.;
    act;
    mw = Mat.create fan_out fan_in 0.;
    vw = Mat.create fan_out fan_in 0.;
    mb = Array.make fan_out 0.;
    vb = Array.make fan_out 0.;
  }

let create ~rng ~layer_sizes ?(hidden = Activation.Relu) () =
  let sizes = Array.of_list layer_sizes in
  let n = Array.length sizes in
  if n < 2 then invalid_arg "Mlp.create: need at least input and output sizes";
  if sizes.(n - 1) <> 1 then invalid_arg "Mlp.create: output size must be 1";
  Array.iter (fun s -> if s <= 0 then invalid_arg "Mlp.create: non-positive layer size") sizes;
  let layers =
    Array.init (n - 1) (fun i ->
        let act = if i = n - 2 then Activation.Identity else hidden in
        make_layer ~rng ~fan_in:sizes.(i) ~fan_out:sizes.(i + 1) ~act)
  in
  { layers; step = 0 }

let copy t =
  {
    layers =
      Array.map
        (fun l ->
          {
            w = Mat.copy l.w;
            b = Array.copy l.b;
            act = l.act;
            mw = Mat.copy l.mw;
            vw = Mat.copy l.vw;
            mb = Array.copy l.mb;
            vb = Array.copy l.vb;
          })
        t.layers;
    step = t.step;
  }

let n_parameters t =
  Array.fold_left
    (fun acc l -> acc + (Mat.rows l.w * Mat.cols l.w) + Array.length l.b)
    0 t.layers

let forward t x =
  Array.fold_left
    (fun input l ->
      let z = Mat.mat_vec l.w input in
      Array.mapi (fun i zi -> Activation.apply l.act (zi +. l.b.(i))) z)
    x t.layers

let predict t x =
  let out = forward t x in
  out.(0)

let predict_batch t xs = Array.map (predict t) xs

(* One forward pass retaining per-layer inputs and pre-activations,
   then backprop; gradients are accumulated into [gw]/[gb]. Returns
   the sample's squared error. *)
let backprop t ~gw ~gb x y =
  let n = Array.length t.layers in
  let inputs = Array.make n [||] in
  let preacts = Array.make n [||] in
  let out = ref x in
  for i = 0 to n - 1 do
    let l = t.layers.(i) in
    inputs.(i) <- !out;
    let z = Mat.mat_vec l.w !out in
    Array.iteri (fun j zj -> z.(j) <- zj +. l.b.(j)) z;
    preacts.(i) <- z;
    out := Array.map (Activation.apply l.act) z
  done;
  let prediction = !out.(0) in
  let err = prediction -. y in
  (* dL/d(activation) for the output layer of the 0.5*err^2 loss. *)
  let upstream = ref [| err |] in
  for i = n - 1 downto 0 do
    let l = t.layers.(i) in
    let delta = Array.mapi (fun j u -> u *. Activation.derivative l.act preacts.(i).(j)) !upstream in
    let input = inputs.(i) in
    for r = 0 to Array.length delta - 1 do
      gb.(i).(r) <- gb.(i).(r) +. delta.(r);
      for c = 0 to Array.length input - 1 do
        Mat.set gw.(i) r c (Mat.get gw.(i) r c +. (delta.(r) *. input.(c)))
      done
    done;
    if i > 0 then upstream := Mat.vec_mat delta l.w
  done;
  err *. err

let adam_beta1 = 0.9
let adam_beta2 = 0.999
let adam_eps = 1e-8

let adam_update t ~lr ~weight_decay ~batch ~gw ~gb =
  t.step <- t.step + 1;
  let bc1 = 1. -. (adam_beta1 ** float_of_int t.step) in
  let bc2 = 1. -. (adam_beta2 ** float_of_int t.step) in
  let inv_batch = 1. /. float_of_int batch in
  Array.iteri
    (fun i l ->
      for r = 0 to Mat.rows l.w - 1 do
        for c = 0 to Mat.cols l.w - 1 do
          let g = (Mat.get gw.(i) r c *. inv_batch) +. (weight_decay *. Mat.get l.w r c) in
          let m = (adam_beta1 *. Mat.get l.mw r c) +. ((1. -. adam_beta1) *. g) in
          let v = (adam_beta2 *. Mat.get l.vw r c) +. ((1. -. adam_beta2) *. g *. g) in
          Mat.set l.mw r c m;
          Mat.set l.vw r c v;
          let update = lr *. (m /. bc1) /. (sqrt (v /. bc2) +. adam_eps) in
          Mat.set l.w r c (Mat.get l.w r c -. update);
          Mat.set gw.(i) r c 0.
        done;
        let g = gb.(i).(r) *. inv_batch in
        let m = (adam_beta1 *. l.mb.(r)) +. ((1. -. adam_beta1) *. g) in
        let v = (adam_beta2 *. l.vb.(r)) +. ((1. -. adam_beta2) *. g *. g) in
        l.mb.(r) <- m;
        l.vb.(r) <- v;
        l.b.(r) <- l.b.(r) -. (lr *. (m /. bc1) /. (sqrt (v /. bc2) +. adam_eps));
        gb.(i).(r) <- 0.
      done)
    t.layers

let train t ~rng ?(config = default_training) ~inputs ~targets () =
  let n = Array.length inputs in
  if n = 0 then invalid_arg "Mlp.train: empty data";
  if n <> Array.length targets then invalid_arg "Mlp.train: input/target length mismatch";
  if config.batch_size <= 0 then invalid_arg "Mlp.train: non-positive batch size";
  let gw = Array.map (fun l -> Mat.create (Mat.rows l.w) (Mat.cols l.w) 0.) t.layers in
  let gb = Array.map (fun l -> Array.make (Array.length l.b) 0.) t.layers in
  let order = Array.init n (fun i -> i) in
  let last_epoch_loss = ref 0. in
  for _epoch = 1 to config.epochs do
    Prng.Rng.shuffle_in_place rng order;
    let epoch_loss = ref 0. in
    let pos = ref 0 in
    while !pos < n do
      let batch = min config.batch_size (n - !pos) in
      for k = 0 to batch - 1 do
        let idx = order.(!pos + k) in
        epoch_loss := !epoch_loss +. backprop t ~gw ~gb inputs.(idx) targets.(idx)
      done;
      adam_update t ~lr:config.learning_rate ~weight_decay:config.weight_decay ~batch ~gw ~gb;
      pos := !pos + batch
    done;
    last_epoch_loss := !epoch_loss /. float_of_int n
  done;
  !last_epoch_loss

let fine_tune t ~rng ?config ~inputs ~targets () =
  Array.iter
    (fun l ->
      l.mw <- Mat.create (Mat.rows l.w) (Mat.cols l.w) 0.;
      l.vw <- Mat.create (Mat.rows l.w) (Mat.cols l.w) 0.;
      l.mb <- Array.make (Array.length l.b) 0.;
      l.vb <- Array.make (Array.length l.b) 0.)
    t.layers;
  t.step <- 0;
  train t ~rng ?config ~inputs ~targets ()

let mse t ~inputs ~targets =
  let n = Array.length inputs in
  if n = 0 then invalid_arg "Mlp.mse: empty data";
  if n <> Array.length targets then invalid_arg "Mlp.mse: input/target length mismatch";
  let acc = ref 0. in
  Array.iteri
    (fun i x ->
      let d = predict t x -. targets.(i) in
      acc := !acc +. (d *. d))
    inputs;
  !acc /. float_of_int n
