(** Descriptive statistics over float arrays.

    Empty-input behaviour: functions that are undefined on empty data
    raise [Invalid_argument]. *)

val mean : float array -> float
val variance : float array -> float
(** Unbiased sample variance (n-1 denominator); 0 for singletons. *)

val stddev : float array -> float
val min : float array -> float
val max : float array -> float
val sum : float array -> float
val median : float array -> float
val mean_std : float array -> float * float
(** [(mean, stddev)] in one pass over the data. *)

val geometric_mean : float array -> float
(** Requires strictly positive entries. *)

val normalize : float array -> float array
(** Rescale so entries sum to 1. Requires a positive sum. *)

val standardize : float array -> float array * float * float
(** [(z, mu, sigma)] where [z.(i) = (x.(i) - mu) / sigma]. If the data
    has zero variance, sigma is reported as 1 so z is all-zero. *)
