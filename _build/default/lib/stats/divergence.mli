(** Divergences between probability distributions.

    Parameter-importance analysis (paper §VI) ranks parameters by the
    Jensen–Shannon divergence between the good and bad per-parameter
    densities (paper eqs. 13–14). Discrete distributions are given as
    probability vectors; continuous densities are compared on a shared
    evaluation grid. *)

val kl : float array -> float array -> float
(** [kl p q] is the Kullback–Leibler divergence D_KL(P ‖ Q) in nats.
    Zero-probability entries of [p] contribute zero; a positive [p]
    entry against a zero [q] entry yields [infinity]. Inputs must be
    the same length and each sum to approximately 1. *)

val js : float array -> float array -> float
(** Jensen–Shannon divergence (eq. 13). Symmetric, finite, bounded by
    log 2, and zero iff the distributions are identical. *)

val js_distance : float array -> float array -> float
(** [sqrt (js p q)], a metric. *)

val js_of_pdfs : lo:float -> hi:float -> n:int -> (float -> float) -> (float -> float) -> float
(** JS divergence between two continuous densities, approximated by
    discretizing both onto [n] equal-width cells spanning [lo, hi] and
    renormalizing. Used for continuous parameters in the importance
    analysis. *)
