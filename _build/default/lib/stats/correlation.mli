(** Correlation coefficients.

    Used to quantify how well a sampled importance ranking recovers
    the exhaustive one, and how correlated the transfer source and
    target domains are. *)

val pearson : float array -> float array -> float
(** Linear correlation in [-1, 1]. Raises [Invalid_argument] on
    mismatched lengths or fewer than two points; returns 0 when either
    input has zero variance. *)

val spearman : float array -> float array -> float
(** Rank correlation: Pearson on fractional ranks (ties get the
    average rank of their run). *)

val ranks : float array -> float array
(** Fractional ranks (1-based; ties averaged) — exposed for tests. *)
