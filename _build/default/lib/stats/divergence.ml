let check_pair name p q =
  if Array.length p <> Array.length q then invalid_arg ("Divergence." ^ name ^ ": length mismatch");
  if Array.length p = 0 then invalid_arg ("Divergence." ^ name ^ ": empty distributions")

let kl p q =
  check_pair "kl" p q;
  let acc = ref 0. in
  for i = 0 to Array.length p - 1 do
    if p.(i) > 0. then
      if q.(i) > 0. then acc := !acc +. (p.(i) *. log (p.(i) /. q.(i))) else acc := infinity
  done;
  !acc

let js p q =
  check_pair "js" p q;
  let m = Array.init (Array.length p) (fun i -> 0.5 *. (p.(i) +. q.(i))) in
  (* m dominates both p and q, so both KL terms are finite. *)
  (0.5 *. kl p m) +. (0.5 *. kl q m)

let js_distance p q = sqrt (js p q)

let js_of_pdfs ~lo ~hi ~n f g =
  if n <= 0 then invalid_arg "Divergence.js_of_pdfs: non-positive grid size";
  if not (lo < hi) then invalid_arg "Divergence.js_of_pdfs: empty interval";
  let width = (hi -. lo) /. float_of_int n in
  let cell h = Array.init n (fun i -> Stdlib.max 0. (h (lo +. ((float_of_int i +. 0.5) *. width)))) in
  let p = cell f and q = cell g in
  let total xs = Array.fold_left ( +. ) 0. xs in
  let tp = total p and tq = total q in
  if tp <= 0. || tq <= 0. then 0.
  else js (Array.map (fun x -> x /. tp) p) (Array.map (fun x -> x /. tq) q)
