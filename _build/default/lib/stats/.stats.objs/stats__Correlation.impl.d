lib/stats/correlation.ml: Array
