lib/stats/divergence.mli:
