lib/stats/quantile.ml: Array Descriptive Float Stdlib
