lib/stats/bootstrap.ml: Array Prng Quantile
