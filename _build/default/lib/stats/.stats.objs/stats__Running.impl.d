lib/stats/running.ml: Stdlib
