lib/stats/quantile.mli:
