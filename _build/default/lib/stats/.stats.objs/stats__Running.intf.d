lib/stats/running.mli:
