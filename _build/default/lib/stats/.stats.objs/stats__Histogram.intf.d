lib/stats/histogram.mli:
