lib/stats/bootstrap.mli: Prng
