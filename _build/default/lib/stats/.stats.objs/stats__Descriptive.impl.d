lib/stats/descriptive.ml: Array Stdlib
