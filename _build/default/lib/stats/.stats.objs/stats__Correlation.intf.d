lib/stats/correlation.mli:
