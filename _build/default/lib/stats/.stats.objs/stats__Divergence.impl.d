lib/stats/divergence.ml: Array Stdlib
