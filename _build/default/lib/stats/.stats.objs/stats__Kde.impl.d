lib/stats/kde.ml: Array Descriptive Prng Quantile Stdlib
