lib/stats/descriptive.mli:
