lib/stats/kde.mli: Prng
