lib/kernels/spmv.mli: Parallel Prng
