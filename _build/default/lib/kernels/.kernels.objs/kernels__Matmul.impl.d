lib/kernels/matmul.ml: Array Parallel Stdlib
