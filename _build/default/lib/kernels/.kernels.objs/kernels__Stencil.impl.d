lib/kernels/stencil.ml: Array Float Parallel Stdlib
