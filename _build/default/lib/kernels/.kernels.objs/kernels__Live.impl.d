lib/kernels/live.ml: Array List Matmul Parallel Param Printf Prng Spmv Stencil Unix
