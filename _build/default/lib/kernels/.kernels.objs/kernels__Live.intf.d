lib/kernels/live.mli: Parallel Param
