lib/kernels/stencil.mli: Parallel
