lib/kernels/spmv.ml: Array Hashtbl List Parallel Prng Stdlib
