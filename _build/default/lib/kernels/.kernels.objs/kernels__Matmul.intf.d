lib/kernels/matmul.mli: Parallel
