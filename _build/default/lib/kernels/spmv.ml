type csr = {
  n_rows : int;
  n_cols : int;
  row_ptr : int array;
  col_idx : int array;
  values : float array;
}

let of_rows ~n_cols rows =
  let n_rows = Array.length rows in
  let row_ptr = Array.make (n_rows + 1) 0 in
  Array.iteri (fun i row -> row_ptr.(i + 1) <- row_ptr.(i) + List.length row) rows;
  let total = row_ptr.(n_rows) in
  let col_idx = Array.make total 0 in
  let values = Array.make total 0. in
  Array.iteri
    (fun i row ->
      List.iteri
        (fun k (c, v) ->
          col_idx.(row_ptr.(i) + k) <- c;
          values.(row_ptr.(i) + k) <- v)
        row)
    rows;
  { n_rows; n_cols; row_ptr; col_idx; values }

let random_band ~rng ~n ~band ~fill =
  if n < 1 then invalid_arg "Spmv.random_band: n must be positive";
  if band < 0 then invalid_arg "Spmv.random_band: negative band";
  if fill <= 0. || fill > 1. then invalid_arg "Spmv.random_band: fill outside (0, 1]";
  let rows =
    Array.init n (fun i ->
        let lo = Stdlib.max 0 (i - band) and hi = Stdlib.min (n - 1) (i + band) in
        let entries = ref [] in
        for c = hi downto lo do
          if c = i || Prng.Rng.float rng < fill then
            entries := (c, Prng.Rng.float rng -. 0.5) :: !entries
        done;
        !entries)
  in
  of_rows ~n_cols:n rows

let random_skewed ~rng ~n ~avg_nnz ~skew =
  if n < 1 then invalid_arg "Spmv.random_skewed: n must be positive";
  if avg_nnz < 1 then invalid_arg "Spmv.random_skewed: avg_nnz must be positive";
  if skew < 0. then invalid_arg "Spmv.random_skewed: negative skew";
  (* Row length ~ avg * (u^-skew) normalized crudely; heavy head. *)
  let rows =
    Array.init n (fun _ ->
        let u = Stdlib.max 1e-3 (Prng.Rng.float rng) in
        let len =
          Stdlib.max 1
            (Stdlib.min (4 * avg_nnz * 8) (int_of_float (float_of_int avg_nnz *. (u ** -.skew) /. (1. +. skew))))
        in
        let seen = Hashtbl.create len in
        let entries = ref [] in
        let attempts = ref 0 in
        while Hashtbl.length seen < len && !attempts < 8 * len do
          incr attempts;
          let c = Prng.Rng.int rng n in
          if not (Hashtbl.mem seen c) then begin
            Hashtbl.add seen c ();
            entries := (c, Prng.Rng.float rng -. 0.5) :: !entries
          end
        done;
        List.sort (fun (a, _) (b, _) -> compare a b) !entries)
  in
  of_rows ~n_cols:n rows

let nnz m = m.row_ptr.(m.n_rows)

let row_dot m x i =
  let acc = ref 0. in
  for k = m.row_ptr.(i) to m.row_ptr.(i + 1) - 1 do
    acc := !acc +. (m.values.(k) *. x.(m.col_idx.(k)))
  done;
  !acc

let check_x m x =
  if Array.length x <> m.n_cols then invalid_arg "Spmv: vector length must equal n_cols"

let multiply_reference m x =
  check_x m x;
  Array.init m.n_rows (row_dot m x)

let multiply ~pool ?schedule m x =
  check_x m x;
  let y = Array.make m.n_rows 0. in
  Parallel.Pool.parallel_for pool ?schedule ~lo:0 ~hi:m.n_rows (fun i -> y.(i) <- row_dot m x i);
  y
