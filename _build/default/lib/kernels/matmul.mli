(** Cache-blocked dense matrix multiply.

    The second executable kernel for live tuning. Tunables: the three
    block sizes of the classic blocked algorithm, the inner-loop order
    within a block, and the loop schedule used to distribute row-
    blocks over the pool. All variants compute exactly [c = a * b]
    (up to floating-point reassociation in the [Ikj]/[Kij] orders). *)

type order =
  | Ijk  (** dot-product form: worst stride behaviour on [b] *)
  | Ikj  (** row-major streaming: unit stride on [b] and [c] *)
  | Jik
  | Kij

val order_label : order -> string
val all_orders : order list

val multiply_reference : a:float array -> b:float array -> int -> float array
(** Naive triple loop; the test oracle. Matrices are dense row-major
    [n x n]. *)

val multiply :
  pool:Parallel.Pool.t ->
  ?schedule:Parallel.Pool.schedule ->
  ?order:order ->
  block_i:int ->
  block_j:int ->
  block_k:int ->
  a:float array ->
  b:float array ->
  int ->
  float array
(** Blocked multiply. Requires positive block sizes and
    [Array.length a = Array.length b = n * n]. Row-block stripes are
    distributed over the pool. *)
