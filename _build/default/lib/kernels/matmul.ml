type order = Ijk | Ikj | Jik | Kij

let order_label = function Ijk -> "ijk" | Ikj -> "ikj" | Jik -> "jik" | Kij -> "kij"
let all_orders = [ Ijk; Ikj; Jik; Kij ]

let check_inputs ~a ~b ~n =
  if n < 1 then invalid_arg "Matmul: n must be positive";
  if Array.length a <> n * n || Array.length b <> n * n then
    invalid_arg "Matmul: matrices must be n*n"

let multiply_reference ~a ~b n =
  check_inputs ~a ~b ~n;
  let c = Array.make (n * n) 0. in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      let acc = ref 0. in
      for k = 0 to n - 1 do
        acc := !acc +. (a.((i * n) + k) *. b.((k * n) + j))
      done;
      c.((i * n) + j) <- !acc
    done
  done;
  c

(* One block-triple: C[i0..i1)[j0..j1) += A[i0..i1)[k0..k1) * B[k0..k1)[j0..j1)
   with the given loop order inside the block. *)
let block_kernel order ~a ~b ~c ~n ~i0 ~i1 ~j0 ~j1 ~k0 ~k1 =
  match order with
  | Ijk ->
      for i = i0 to i1 - 1 do
        for j = j0 to j1 - 1 do
          let acc = ref c.((i * n) + j) in
          for k = k0 to k1 - 1 do
            acc := !acc +. (a.((i * n) + k) *. b.((k * n) + j))
          done;
          c.((i * n) + j) <- !acc
        done
      done
  | Ikj ->
      for i = i0 to i1 - 1 do
        for k = k0 to k1 - 1 do
          let aik = a.((i * n) + k) in
          if aik <> 0. then
            for j = j0 to j1 - 1 do
              c.((i * n) + j) <- c.((i * n) + j) +. (aik *. b.((k * n) + j))
            done
        done
      done
  | Jik ->
      for j = j0 to j1 - 1 do
        for i = i0 to i1 - 1 do
          let acc = ref c.((i * n) + j) in
          for k = k0 to k1 - 1 do
            acc := !acc +. (a.((i * n) + k) *. b.((k * n) + j))
          done;
          c.((i * n) + j) <- !acc
        done
      done
  | Kij ->
      for k = k0 to k1 - 1 do
        for i = i0 to i1 - 1 do
          let aik = a.((i * n) + k) in
          if aik <> 0. then
            for j = j0 to j1 - 1 do
              c.((i * n) + j) <- c.((i * n) + j) +. (aik *. b.((k * n) + j))
            done
        done
      done

let multiply ~pool ?schedule ?(order = Ikj) ~block_i ~block_j ~block_k ~a ~b n =
  check_inputs ~a ~b ~n;
  if block_i < 1 || block_j < 1 || block_k < 1 then invalid_arg "Matmul: block sizes must be positive";
  let c = Array.make (n * n) 0. in
  let stripes = (n + block_i - 1) / block_i in
  (* Each stripe of C rows is owned by exactly one loop iteration, so
     block updates never race. *)
  Parallel.Pool.parallel_for pool ?schedule ~lo:0 ~hi:stripes (fun s ->
      let i0 = s * block_i in
      let i1 = Stdlib.min n (i0 + block_i) in
      let j0 = ref 0 in
      while !j0 < n do
        let j1 = Stdlib.min n (!j0 + block_j) in
        let k0 = ref 0 in
        while !k0 < n do
          let k1 = Stdlib.min n (!k0 + block_k) in
          block_kernel order ~a ~b ~c ~n ~i0 ~i1 ~j0:!j0 ~j1 ~k0:!k0 ~k1;
          k0 := k1
        done;
        j0 := j1
      done);
  c
