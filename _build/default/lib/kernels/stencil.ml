type grid = { rows : int; cols : int; data : float array }

let create_grid ~rows ~cols f =
  if rows < 3 || cols < 3 then invalid_arg "Stencil.create_grid: grid must be at least 3x3";
  { rows; cols; data = Array.init (rows * cols) (fun k -> f (k / cols) (k mod cols)) }

let get g r c =
  if r < 0 || r >= g.rows || c < 0 || c >= g.cols then invalid_arg "Stencil.get: out of bounds";
  g.data.((r * g.cols) + c)

let sweep_reference g =
  let out = { g with data = Array.copy g.data } in
  for r = 1 to g.rows - 2 do
    for c = 1 to g.cols - 2 do
      let k = (r * g.cols) + c in
      out.data.(k) <-
        0.25 *. (g.data.(k - 1) +. g.data.(k + 1) +. g.data.(k - g.cols) +. g.data.(k + g.cols))
    done
  done;
  out

(* One tile of one sweep: rows [r_lo, r_hi), cols [c_lo, c_hi) of the
   interior, reading [src] and writing [dst]. *)
let sweep_tile ~src ~dst ~cols ~r_lo ~r_hi ~c_lo ~c_hi =
  for r = r_lo to r_hi - 1 do
    let row = r * cols in
    for c = c_lo to c_hi - 1 do
      let k = row + c in
      dst.(k) <- 0.25 *. (src.(k - 1) +. src.(k + 1) +. src.(k - cols) +. src.(k + cols))
    done
  done

let run ~pool ?schedule ~tile_rows ~tile_cols ~iters g =
  if tile_rows < 1 || tile_cols < 1 then invalid_arg "Stencil.run: tile sizes must be positive";
  if iters < 0 then invalid_arg "Stencil.run: negative iteration count";
  let interior_rows = g.rows - 2 and interior_cols = g.cols - 2 in
  let tiles_r = (interior_rows + tile_rows - 1) / tile_rows in
  let tiles_c = (interior_cols + tile_cols - 1) / tile_cols in
  let n_tiles = tiles_r * tiles_c in
  let src = ref (Array.copy g.data) in
  let dst = ref (Array.copy g.data) in
  for _ = 1 to iters do
    let src_now = !src and dst_now = !dst in
    Parallel.Pool.parallel_for pool ?schedule ~lo:0 ~hi:n_tiles (fun tile ->
        let tr = tile / tiles_c and tc = tile mod tiles_c in
        let r_lo = 1 + (tr * tile_rows) in
        let r_hi = Stdlib.min (g.rows - 1) (r_lo + tile_rows) in
        let c_lo = 1 + (tc * tile_cols) in
        let c_hi = Stdlib.min (g.cols - 1) (c_lo + tile_cols) in
        sweep_tile ~src:src_now ~dst:dst_now ~cols:g.cols ~r_lo ~r_hi ~c_lo ~c_hi);
    let tmp = !src in
    src := !dst;
    dst := tmp
  done;
  { g with data = !src }

let residual a b =
  if a.rows <> b.rows || a.cols <> b.cols then invalid_arg "Stencil.residual: shape mismatch";
  let worst = ref 0. in
  Array.iteri
    (fun k x ->
      let d = Float.abs (x -. b.data.(k)) in
      if d > !worst then worst := d)
    a.data;
  !worst
