(** Tiled 2-D 5-point Jacobi stencil.

    A real, executable kernel whose tunables (tile shape, loop
    schedule) change measured wall-clock time — used by the live-
    tuning example to demonstrate HiPerBOt on an objective that is an
    actual execution rather than a recorded dataset.

    The grid is a dense [rows x cols] float array in row-major order.
    One sweep computes, for every interior cell, the average of its
    four neighbours; boundary cells are held fixed (Dirichlet). *)

type grid = { rows : int; cols : int; data : float array }

val create_grid : rows:int -> cols:int -> (int -> int -> float) -> grid
(** [create_grid ~rows ~cols f] fills cell [(r, c)] with [f r c].
    Requires [rows >= 3] and [cols >= 3]. *)

val get : grid -> int -> int -> float

val sweep_reference : grid -> grid
(** One Jacobi sweep, naive sequential implementation (the test
    oracle). Returns a fresh grid. *)

val run :
  pool:Parallel.Pool.t ->
  ?schedule:Parallel.Pool.schedule ->
  tile_rows:int ->
  tile_cols:int ->
  iters:int ->
  grid ->
  grid
(** [run ~pool ~tile_rows ~tile_cols ~iters g] performs [iters] Jacobi
    sweeps with the interior partitioned into [tile_rows x tile_cols]
    tiles; tiles are distributed over the pool with [schedule]
    (default [Static]). Requires positive tile sizes and
    [iters >= 0]. Tiling and scheduling change only performance, never
    the result. *)

val residual : grid -> grid -> float
(** Max-norm difference between two grids of the same shape (test
    helper). *)
