(** Sparse matrix-vector product (CSR) with tunable row scheduling.

    The third executable kernel. SpMV's iteration cost varies per row
    (row lengths differ), which is exactly the load-imbalance regime
    where the pool's loop schedule matters: static chunks lose to
    dynamic/guided ones on skewed matrices. *)

type csr = {
  n_rows : int;
  n_cols : int;
  row_ptr : int array;  (** length n_rows + 1 *)
  col_idx : int array;
  values : float array;
}

val random_band : rng:Prng.Rng.t -> n:int -> band:int -> fill:float -> csr
(** Random banded matrix: row [i] draws entries uniformly from columns
    [i - band, i + band] with density [fill] in (0, 1]; every row gets
    at least its diagonal. *)

val random_skewed : rng:Prng.Rng.t -> n:int -> avg_nnz:int -> skew:float -> csr
(** Power-law row lengths: a few heavy rows, many light ones. [skew]
    >= 0 (0 = uniform). Load imbalance grows with [skew]. *)

val nnz : csr -> int

val multiply_reference : csr -> float array -> float array
(** Sequential oracle. Requires [Array.length x = n_cols]. *)

val multiply :
  pool:Parallel.Pool.t -> ?schedule:Parallel.Pool.schedule -> csr -> float array -> float array
(** Rows distributed over the pool with [schedule]. Bit-identical to
    the reference (per-row dot products are computed in the same
    order). *)
