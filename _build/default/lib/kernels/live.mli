(** Live-tuning adapters: parameter spaces and wall-clock objectives
    for the executable kernels, so HiPerBOt can tune real executions
    on the current machine (see [examples/live_tuning.ml]).

    Unlike the recorded datasets in [hpcsim], these objectives are
    genuinely noisy (machine jitter) and machine-dependent — which is
    exactly the regime the paper targets. *)

val schedule_labels : string list
(** The schedule choices exposed as a categorical parameter:
    "static", "dynamic16", "dynamic64", "guided". *)

val schedule_of_label : string -> Parallel.Pool.schedule
(** Raises [Invalid_argument] for unknown labels. *)

val stencil_space : Param.Space.t
(** tile_rows x tile_cols x schedule. *)

val stencil_objective :
  pool:Parallel.Pool.t -> ?rows:int -> ?cols:int -> ?iters:int -> unit -> Param.Config.t -> float
(** Wall-clock seconds for [iters] Jacobi sweeps (default 8) on a
    [rows x cols] grid (default 256 x 256) under the configuration's
    tiling and schedule. *)

val matmul_space : Param.Space.t
(** block_i x block_j x block_k x order x schedule. *)

val matmul_objective : pool:Parallel.Pool.t -> ?n:int -> unit -> Param.Config.t -> float
(** Wall-clock seconds for one [n x n] (default 128) blocked multiply
    under the configuration. *)

val spmv_space : Param.Space.t
(** schedule only — SpMV's tunable is how rows are scheduled. *)

val spmv_objective :
  pool:Parallel.Pool.t -> ?n:int -> ?avg_nnz:int -> ?skew:float -> ?repeats:int -> unit ->
  Param.Config.t -> float
(** Wall-clock seconds for [repeats] (default 8) products with a
    skewed random CSR matrix (default n = 4096, avg_nnz = 16,
    skew = 0.8). *)
