let schedule_labels = [ "static"; "dynamic16"; "dynamic64"; "guided" ]

let schedule_of_label = function
  | "static" -> Parallel.Pool.Static
  | "dynamic16" -> Parallel.Pool.Dynamic 16
  | "dynamic64" -> Parallel.Pool.Dynamic 64
  | "guided" -> Parallel.Pool.Guided
  | label -> invalid_arg (Printf.sprintf "Live.schedule_of_label: unknown schedule %S" label)

let time f =
  let t0 = Unix.gettimeofday () in
  let _ = f () in
  Unix.gettimeofday () -. t0

let level space config name =
  Param.Spec.level
    (Param.Space.spec space (Param.Space.index_of_name space name))
    (Param.Value.to_index config.(Param.Space.index_of_name space name))

let label space config name =
  let i = Param.Space.index_of_name space name in
  Param.Spec.value_to_string (Param.Space.spec space i) config.(i)

(* ---- stencil ---- *)

let stencil_space =
  Param.Space.make
    [
      Param.Spec.ordinal_ints "tile_rows" [ 4; 8; 16; 32; 64; 128 ];
      Param.Spec.ordinal_ints "tile_cols" [ 4; 8; 16; 32; 64; 128 ];
      Param.Spec.categorical "schedule" schedule_labels;
    ]

let stencil_objective ~pool ?(rows = 256) ?(cols = 256) ?(iters = 8) () =
  let grid =
    Stencil.create_grid ~rows ~cols (fun r c ->
        if r = 0 then 1.0 else if r = rows - 1 then -1.0 else 0.01 *. float_of_int (c mod 7))
  in
  fun config ->
    let tile_rows = int_of_float (level stencil_space config "tile_rows") in
    let tile_cols = int_of_float (level stencil_space config "tile_cols") in
    let schedule = schedule_of_label (label stencil_space config "schedule") in
    time (fun () -> Stencil.run ~pool ~schedule ~tile_rows ~tile_cols ~iters grid)

(* ---- matmul ---- *)

let matmul_space =
  Param.Space.make
    [
      Param.Spec.ordinal_ints "block_i" [ 8; 16; 32; 64 ];
      Param.Spec.ordinal_ints "block_j" [ 8; 16; 32; 64 ];
      Param.Spec.ordinal_ints "block_k" [ 8; 16; 32; 64 ];
      Param.Spec.categorical "order" (List.map Matmul.order_label Matmul.all_orders);
      Param.Spec.categorical "schedule" schedule_labels;
    ]

let matmul_objective ~pool ?(n = 128) () =
  let rng = Prng.Rng.create 12345 in
  let a = Array.init (n * n) (fun _ -> Prng.Rng.float rng -. 0.5) in
  let b = Array.init (n * n) (fun _ -> Prng.Rng.float rng -. 0.5) in
  fun config ->
    let block name = int_of_float (level matmul_space config name) in
    let order =
      let l = label matmul_space config "order" in
      List.find (fun o -> Matmul.order_label o = l) Matmul.all_orders
    in
    let schedule = schedule_of_label (label matmul_space config "schedule") in
    time (fun () ->
        Matmul.multiply ~pool ~schedule ~order ~block_i:(block "block_i") ~block_j:(block "block_j")
          ~block_k:(block "block_k") ~a ~b n)

(* ---- spmv ---- *)

let spmv_space = Param.Space.make [ Param.Spec.categorical "schedule" schedule_labels ]

let spmv_objective ~pool ?(n = 4096) ?(avg_nnz = 16) ?(skew = 0.8) ?(repeats = 8) () =
  let rng = Prng.Rng.create 54321 in
  let m = Spmv.random_skewed ~rng ~n ~avg_nnz ~skew in
  let x = Array.init n (fun _ -> Prng.Rng.float rng -. 0.5) in
  fun config ->
    let schedule = schedule_of_label (label spmv_space config "schedule") in
    time (fun () ->
        for _ = 1 to repeats do
          ignore (Spmv.multiply ~pool ~schedule m x)
        done)
