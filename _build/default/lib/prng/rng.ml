type t = { mutable s0 : int64; mutable s1 : int64; mutable s2 : int64; mutable s3 : int64 }

(* SplitMix64 step, used only to expand a seed into xoshiro state and
   to derive child seeds in [split]. *)
let splitmix64_next state =
  let open Int64 in
  state := add !state 0x9E3779B97F4A7C15L;
  let z = !state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let create seed =
  let state = ref (Int64.of_int seed) in
  let s0 = splitmix64_next state in
  let s1 = splitmix64_next state in
  let s2 = splitmix64_next state in
  let s3 = splitmix64_next state in
  { s0; s1; s2; s3 }

let copy t = { s0 = t.s0; s1 = t.s1; s2 = t.s2; s3 = t.s3 }

let rotl x k = Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

let bits64 t =
  let open Int64 in
  let result = mul (rotl (mul t.s1 5L) 7) 9L in
  let tmp = shift_left t.s1 17 in
  t.s2 <- logxor t.s2 t.s0;
  t.s3 <- logxor t.s3 t.s1;
  t.s1 <- logxor t.s1 t.s2;
  t.s0 <- logxor t.s0 t.s3;
  t.s2 <- logxor t.s2 tmp;
  t.s3 <- rotl t.s3 45;
  result

let split t =
  let state = ref (bits64 t) in
  let s0 = splitmix64_next state in
  let s1 = splitmix64_next state in
  let s2 = splitmix64_next state in
  let s3 = splitmix64_next state in
  { s0; s1; s2; s3 }

let float t =
  (* Use the top 53 bits for a uniform double in [0, 1). *)
  let bits = Int64.shift_right_logical (bits64 t) 11 in
  Int64.to_float bits *. 0x1.0p-53

let float_range t lo hi =
  assert (lo < hi);
  lo +. ((hi -. lo) *. float t)

let int t n =
  assert (n > 0);
  (* Rejection sampling to avoid modulo bias. *)
  let n64 = Int64.of_int n in
  let rec draw () =
    let raw = Int64.shift_right_logical (bits64 t) 1 in
    let v = Int64.rem raw n64 in
    if Int64.sub raw v > Int64.sub (Int64.sub Int64.max_int n64) 1L then draw ()
    else Int64.to_int v
  in
  draw ()

let bool t = Int64.compare (Int64.logand (bits64 t) 1L) 0L <> 0

let normal t =
  (* Box–Muller; we discard the second deviate for simplicity. *)
  let rec nonzero () =
    let u = float t in
    if u > 0. then u else nonzero ()
  in
  let u1 = nonzero () in
  let u2 = float t in
  sqrt (-2. *. log u1) *. cos (2. *. Float.pi *. u2)

let gaussian t ~mu ~sigma = mu +. (sigma *. normal t)

let exponential t ~rate =
  assert (rate > 0.);
  let rec nonzero () =
    let u = float t in
    if u > 0. then u else nonzero ()
  in
  -.log (nonzero ()) /. rate

let categorical t weights =
  let total = Array.fold_left ( +. ) 0. weights in
  assert (total > 0.);
  let target = float t *. total in
  let n = Array.length weights in
  let rec scan i acc =
    if i = n - 1 then i
    else
      let acc = acc +. weights.(i) in
      if target < acc then i else scan (i + 1) acc
  in
  scan 0 0.

let shuffle_in_place t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let sample_without_replacement t k n =
  assert (0 <= k && k <= n);
  (* Partial Fisher–Yates over [0, n). *)
  let pool = Array.init n (fun i -> i) in
  for i = 0 to k - 1 do
    let j = i + int t (n - i) in
    let tmp = pool.(i) in
    pool.(i) <- pool.(j);
    pool.(j) <- tmp
  done;
  Array.sub pool 0 k

let choose t arr =
  assert (Array.length arr > 0);
  arr.(int t (Array.length arr))
