lib/prng/rng.mli:
