lib/prng/rng.ml: Array Float Int64
