(** Deterministic, splittable pseudo-random number generation.

    The generator is xoshiro256** seeded through SplitMix64, which is
    the standard recommendation for initializing xoshiro state from a
    single 64-bit seed. All experiment repetitions in this repository
    derive their streams from [split] so that results are reproducible
    run-to-run and independent across repetitions. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] builds a generator from a single integer seed.
    Distinct seeds produce decorrelated streams. *)

val copy : t -> t
(** Independent copy of the current state. *)

val split : t -> t
(** [split rng] derives a fresh generator from [rng], advancing [rng].
    The returned stream is decorrelated from the parent. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val float : t -> float
(** Uniform float in [0, 1). *)

val float_range : t -> float -> float -> float
(** [float_range rng lo hi] is uniform in [lo, hi). Requires [lo < hi]. *)

val int : t -> int -> int
(** [int rng n] is uniform in [0, n). Requires [n > 0]. *)

val bool : t -> bool
(** Fair coin flip. *)

val normal : t -> float
(** Standard normal deviate (Box–Muller, one value per call). *)

val gaussian : t -> mu:float -> sigma:float -> float
(** Normal deviate with mean [mu] and standard deviation [sigma]. *)

val exponential : t -> rate:float -> float
(** Exponential deviate with the given rate. Requires [rate > 0]. *)

val categorical : t -> float array -> int
(** [categorical rng weights] samples an index with probability
    proportional to [weights.(i)]. Requires non-negative weights with a
    positive sum. *)

val shuffle_in_place : t -> 'a array -> unit
(** Fisher–Yates shuffle. *)

val sample_without_replacement : t -> int -> int -> int array
(** [sample_without_replacement rng k n] draws [k] distinct indices
    from [0, n). Requires [0 <= k <= n]. *)

val choose : t -> 'a array -> 'a
(** Uniform choice from a non-empty array. *)
