(** Gaussian-process regression with exact Cholesky inference.

    Backs the GP-EI tuner baseline (the adaptive-sampling prior work
    the paper cites as [17], and DESIGN.md's TPE-vs-GP ablation).
    Targets are internally standardized; predictions are returned in
    the original scale. *)

type t

val fit : ?kernel:Kernel.t -> ?noise:float -> inputs:float array array -> targets:float array -> unit -> t
(** [fit ~inputs ~targets ()] conditions a GP on the data.
    [kernel] defaults to an RBF with lengthscale [sqrt d / 2] (a
    reasonable scale for one-hot encoded configuration vectors);
    [noise] (default 1e-4) is the observation-noise variance added to
    the Gram diagonal (jitter). Raises [Invalid_argument] on empty or
    mismatched data. *)

val n_train : t -> int

val predict : t -> float array -> float * float
(** [(mean, variance)] of the posterior at a point; variance is
    clamped to be non-negative. *)

val predict_mean : t -> float array -> float

val expected_improvement : t -> best:float -> float array -> float
(** EI for minimization against the incumbent [best] (original target
    scale): [E max(best - Y, 0)] under the posterior. *)

val log_marginal_likelihood : t -> float
(** Of the standardized targets, for kernel comparison. *)
