(** Covariance kernels for Gaussian-process regression. *)

type t =
  | Rbf of { lengthscale : float; variance : float }
      (** Squared-exponential: [v * exp (-|x-y|^2 / (2 l^2))]. *)
  | Matern52 of { lengthscale : float; variance : float }

val rbf : ?lengthscale:float -> ?variance:float -> unit -> t
(** Defaults: lengthscale 1.0, variance 1.0. Both must be positive. *)

val matern52 : ?lengthscale:float -> ?variance:float -> unit -> t

val eval : t -> float array -> float array -> float
(** Kernel value between two (equal-length) points. *)

val gram : t -> float array array -> Linalg.Mat.t
(** Symmetric Gram matrix of a point set. *)

val cross : t -> float array array -> float array -> float array
(** Kernel vector between each training point and one test point. *)
