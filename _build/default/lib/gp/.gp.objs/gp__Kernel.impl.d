lib/gp/kernel.ml: Array Linalg
