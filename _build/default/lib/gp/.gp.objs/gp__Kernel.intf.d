lib/gp/kernel.mli: Linalg
