lib/gp/gpr.ml: Array Float Kernel Linalg Stdlib
