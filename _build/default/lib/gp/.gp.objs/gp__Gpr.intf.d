lib/gp/gpr.mli: Kernel
