module Mat = Linalg.Mat
module Vec = Linalg.Vec

type t = {
  kernel : Kernel.t;
  inputs : float array array;
  chol : Mat.t;  (** lower Cholesky factor of K + noise I *)
  alpha : float array;  (** (K + noise I)^-1 y, standardized targets *)
  y_std : float array;
  mu : float;
  sigma : float;
}

let fit ?kernel ?(noise = 1e-4) ~inputs ~targets () =
  let n = Array.length inputs in
  if n = 0 then invalid_arg "Gpr.fit: empty data";
  if n <> Array.length targets then invalid_arg "Gpr.fit: input/target length mismatch";
  if noise < 0. then invalid_arg "Gpr.fit: negative noise";
  let d = Array.length inputs.(0) in
  let kernel =
    match kernel with
    | Some k -> k
    | None -> Kernel.rbf ~lengthscale:(Stdlib.max 1e-3 (sqrt (float_of_int d) /. 2.)) ()
  in
  let y_std, mu, sigma =
    let mu = Array.fold_left ( +. ) 0. targets /. float_of_int n in
    let var = Array.fold_left (fun acc y -> acc +. ((y -. mu) ** 2.)) 0. targets /. float_of_int n in
    let sigma = if var > 0. then sqrt var else 1. in
    (Array.map (fun y -> (y -. mu) /. sigma) targets, mu, sigma)
  in
  let gram = Kernel.gram kernel inputs in
  for i = 0 to n - 1 do
    Mat.set gram i i (Mat.get gram i i +. noise +. 1e-10)
  done;
  let chol = Mat.cholesky gram in
  let alpha = Mat.cholesky_solve chol y_std in
  { kernel; inputs; chol; alpha; y_std; mu; sigma }

let n_train t = Array.length t.inputs

let predict t x =
  let k_star = Kernel.cross t.kernel t.inputs x in
  let mean_std = Vec.dot k_star t.alpha in
  let v = Mat.solve_lower t.chol k_star in
  let variance_std = Kernel.eval t.kernel x x -. Vec.dot v v in
  let variance_std = Stdlib.max 0. variance_std in
  (t.mu +. (t.sigma *. mean_std), t.sigma *. t.sigma *. variance_std)

let predict_mean t x = fst (predict t x)

let standard_normal_pdf z = exp (-0.5 *. z *. z) /. sqrt (2. *. Float.pi)

(* Abramowitz-Stegun style CDF via erf-free rational approximation is
   overkill here; erf is not in stdlib, so use the Zelen-Severo
   approximation through the complementary error function expansion. *)
let standard_normal_cdf z =
  (* Hart's algorithm via tanh-based approximation is not accurate
     enough in the tails; use the A&S 26.2.17 polynomial instead,
     which is within 7.5e-8 everywhere. *)
  let sign = if z < 0. then -1. else 1. in
  let x = Float.abs z /. sqrt 2. in
  let t = 1. /. (1. +. (0.3275911 *. x)) in
  let poly =
    t *. (0.254829592 +. (t *. (-0.284496736 +. (t *. (1.421413741 +. (t *. (-1.453152027 +. (t *. 1.061405429))))))))
  in
  let erf = 1. -. (poly *. exp (-.x *. x)) in
  0.5 *. (1. +. (sign *. erf))

let expected_improvement t ~best x =
  let mean, variance = predict t x in
  let sd = sqrt variance in
  if sd <= 0. then Stdlib.max 0. (best -. mean)
  else begin
    let z = (best -. mean) /. sd in
    ((best -. mean) *. standard_normal_cdf z) +. (sd *. standard_normal_pdf z)
  end

let log_marginal_likelihood t =
  let n = float_of_int (n_train t) in
  let data_fit = -0.5 *. Vec.dot t.y_std t.alpha in
  let complexity = -0.5 *. Mat.log_det_from_cholesky t.chol in
  data_fit +. complexity -. (0.5 *. n *. log (2. *. Float.pi))
