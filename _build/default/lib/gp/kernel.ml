type t =
  | Rbf of { lengthscale : float; variance : float }
  | Matern52 of { lengthscale : float; variance : float }

let check_params ~lengthscale ~variance =
  if lengthscale <= 0. then invalid_arg "Kernel: non-positive lengthscale";
  if variance <= 0. then invalid_arg "Kernel: non-positive variance"

let rbf ?(lengthscale = 1.0) ?(variance = 1.0) () =
  check_params ~lengthscale ~variance;
  Rbf { lengthscale; variance }

let matern52 ?(lengthscale = 1.0) ?(variance = 1.0) () =
  check_params ~lengthscale ~variance;
  Matern52 { lengthscale; variance }

let eval t x y =
  let d2 = Linalg.Vec.sq_dist x y in
  match t with
  | Rbf { lengthscale; variance } -> variance *. exp (-.d2 /. (2. *. lengthscale *. lengthscale))
  | Matern52 { lengthscale; variance } ->
      let r = sqrt d2 /. lengthscale in
      let s5r = sqrt 5. *. r in
      variance *. (1. +. s5r +. (5. *. r *. r /. 3.)) *. exp (-.s5r)

let gram t points =
  let n = Array.length points in
  let m = Linalg.Mat.create n n 0. in
  for i = 0 to n - 1 do
    for j = i to n - 1 do
      let v = eval t points.(i) points.(j) in
      Linalg.Mat.set m i j v;
      Linalg.Mat.set m j i v
    done
  done;
  m

let cross t points x = Array.map (fun p -> eval t p x) points
