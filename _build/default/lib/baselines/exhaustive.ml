let best table = Dataset.Table.best table

let run table =
  let n = Dataset.Table.size table in
  let history = Array.init n (fun i -> (Dataset.Table.config table i, Dataset.Table.objective table i)) in
  Outcome.of_history history
