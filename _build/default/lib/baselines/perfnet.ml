type options = {
  hidden : int list;
  source_training : Nn.Mlp.training;
  finetune_training : Nn.Mlp.training;
  finetune_fraction : float;
  max_source_samples : int;
}

let default_options =
  {
    hidden = [ 64; 32 ];
    source_training =
      { Nn.Mlp.epochs = 60; batch_size = 32; learning_rate = 1e-3; weight_decay = 1e-5 };
    finetune_training =
      { Nn.Mlp.epochs = 120; batch_size = 16; learning_rate = 5e-4; weight_decay = 1e-5 };
    finetune_fraction = 0.5;
    max_source_samples = 2000;
  }

(* Objectives are positive and heavy-tailed; the network regresses
   log-time standardized by the source statistics. *)
let make_transform source_ys =
  let logs = Array.map (fun y -> log (Stdlib.max 1e-12 y)) source_ys in
  let mu = Array.fold_left ( +. ) 0. logs /. float_of_int (Array.length logs) in
  let var =
    Array.fold_left (fun acc l -> acc +. ((l -. mu) ** 2.)) 0. logs /. float_of_int (Array.length logs)
  in
  let sigma = if var > 0. then sqrt var else 1. in
  fun y -> (log (Stdlib.max 1e-12 y) -. mu) /. sigma

let run ?(options = default_options) ~rng ~space ~source ~objective ~budget () =
  if budget < 1 then invalid_arg "Perfnet.run: budget must be at least 1";
  if Array.length source = 0 then invalid_arg "Perfnet.run: empty source data";
  if options.finetune_fraction < 0. || options.finetune_fraction > 1. then
    invalid_arg "Perfnet.run: finetune_fraction outside [0, 1]";
  let total =
    match Param.Space.cardinality space with
    | Some n -> n
    | None -> invalid_arg "Perfnet.run: space must be finite"
  in
  let budget = min budget total in
  let transform = make_transform (Array.map snd source) in
  (* Train the source model on a bounded subsample. *)
  let source_pool =
    if Array.length source <= options.max_source_samples then source
    else begin
      let idx = Prng.Rng.sample_without_replacement rng options.max_source_samples (Array.length source) in
      Array.map (fun i -> source.(i)) idx
    end
  in
  let encode c = Param.Space.encode space c in
  let inputs = Array.map (fun (c, _) -> encode c) source_pool in
  let targets = Array.map (fun (_, y) -> transform y) source_pool in
  let d = Param.Space.encode_width space in
  let model = Nn.Mlp.create ~rng ~layer_sizes:((d :: options.hidden) @ [ 1 ]) () in
  let (_ : float) = Nn.Mlp.train model ~rng ~config:options.source_training ~inputs ~targets () in
  (* Fine-tune on random target evaluations. *)
  let n_finetune =
    Stdlib.max 1 (min (budget - 1) (int_of_float (Float.round (options.finetune_fraction *. float_of_int budget))))
  in
  let finetune_ranks = Prng.Rng.sample_without_replacement rng n_finetune total in
  let history = ref [] in
  let evaluated = Hashtbl.create budget in
  let evaluate rank =
    let config = Param.Space.config_of_rank space rank in
    let y = objective config in
    Hashtbl.replace evaluated rank ();
    history := (config, y) :: !history;
    y
  in
  let finetune_pairs = Array.map (fun rank -> (rank, evaluate rank)) finetune_ranks in
  let ft_inputs = Array.map (fun (rank, _) -> encode (Param.Space.config_of_rank space rank)) finetune_pairs in
  let ft_targets = Array.map (fun (_, y) -> transform y) finetune_pairs in
  let (_ : float) =
    Nn.Mlp.fine_tune model ~rng ~config:options.finetune_training ~inputs:ft_inputs ~targets:ft_targets ()
  in
  (* Spend the remaining budget on the best-predicted configurations. *)
  let remaining = budget - n_finetune in
  if remaining > 0 then begin
    let predictions =
      Array.init total (fun rank -> (rank, Nn.Mlp.predict model (encode (Param.Space.config_of_rank space rank))))
    in
    Array.sort (fun (_, a) (_, b) -> compare a b) predictions;
    let taken = ref 0 in
    let i = ref 0 in
    while !taken < remaining && !i < total do
      let rank, _ = predictions.(!i) in
      if not (Hashtbl.mem evaluated rank) then begin
        let (_ : float) = evaluate rank in
        incr taken
      end;
      incr i
    done
  end;
  Outcome.of_history (Array.of_list (List.rev !history))
