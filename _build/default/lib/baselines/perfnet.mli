(** PerfNet baseline (Marathe et al., SC 2017 — paper ref [11]):
    deep-learning transfer. An MLP regressor is trained on abundant
    source-domain observations (one-hot encoded configurations,
    log-standardized objectives), fine-tuned on a small random set of
    target-domain evaluations, and the remaining evaluation budget is
    spent on the configurations with the best predicted target
    performance. The selected set (random fine-tune samples plus
    top-predicted samples) is what the Recall metric scores. *)

type options = {
  hidden : int list;  (** hidden-layer widths (default [64; 32]) *)
  source_training : Nn.Mlp.training;
  finetune_training : Nn.Mlp.training;
  finetune_fraction : float;
      (** fraction of the budget spent on random fine-tuning samples
          (default 0.5); the rest goes to top-predicted candidates *)
  max_source_samples : int;
      (** cap on source rows used for training (default 2000) —
          the published source datasets have tens of thousands of
          rows, far more than the regressor needs *)
}

val default_options : options

val run :
  ?options:options ->
  rng:Prng.Rng.t ->
  space:Param.Space.t ->
  source:(Param.Config.t * float) array ->
  objective:(Param.Config.t -> float) ->
  budget:int ->
  unit ->
  Outcome.t
(** Requires a finite space (predictions are ranked over its
    enumeration) and non-empty source data. *)
