(** Random selection baseline (paper §V): configurations drawn
    uniformly at random from the finite space, without replacement. *)

val run :
  rng:Prng.Rng.t ->
  space:Param.Space.t ->
  objective:(Param.Config.t -> float) ->
  budget:int ->
  unit ->
  Outcome.t
(** Requires a finite space and [1 <= budget]; draws
    [min budget |space|] distinct configurations. *)
