(** Gaussian-process expected-improvement tuner — the adaptive-
    sampling prior work the paper cites (Duplyakin et al., ref [17])
    and the surrogate-model ablation of DESIGN.md (TPE-style density
    ratio vs GP posterior).

    Standard BO loop: random initialization, then repeatedly fit a GP
    on the one-hot encoded evaluations and evaluate the pool candidate
    with the highest expected improvement. Exact GP inference is
    O(n^3) in the number of evaluations, so the model is refit every
    [refit_every] evaluations and the candidate pool is subsampled to
    [max_pool] configurations per iteration. *)

type options = {
  n_init : int;  (** default 20 *)
  noise : float;  (** observation-noise variance (default 1e-4) *)
  refit_every : int;  (** default 1 (refit each iteration) *)
  max_pool : int;  (** candidate subsample per iteration (default 2000) *)
}

val default_options : options

val run :
  ?options:options ->
  rng:Prng.Rng.t ->
  space:Param.Space.t ->
  objective:(Param.Config.t -> float) ->
  budget:int ->
  unit ->
  Outcome.t
(** Requires a finite space. Objectives are log-transformed
    internally (they are positive, heavy-tailed times/energies). *)
