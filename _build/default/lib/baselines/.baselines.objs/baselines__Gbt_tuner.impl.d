lib/baselines/gbt_tuner.ml: Array Gbt Hashtbl List Option Outcome Param Prng Stdlib
