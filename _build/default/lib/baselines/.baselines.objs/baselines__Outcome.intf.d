lib/baselines/outcome.mli: Hiperbot Param
