lib/baselines/exhaustive.mli: Dataset Outcome Param
