lib/baselines/random_search.ml: Array Outcome Param Prng
