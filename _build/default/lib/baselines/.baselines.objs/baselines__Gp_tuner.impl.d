lib/baselines/gp_tuner.ml: Array Float Gp Hashtbl List Option Outcome Param Prng Stdlib
