lib/baselines/outcome.ml: Array Hiperbot Param
