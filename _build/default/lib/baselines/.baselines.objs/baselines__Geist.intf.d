lib/baselines/geist.mli: Graphlib Outcome Param Prng
