lib/baselines/random_search.mli: Outcome Param Prng
