lib/baselines/perfnet.ml: Array Float Hashtbl List Nn Outcome Param Prng Stdlib
