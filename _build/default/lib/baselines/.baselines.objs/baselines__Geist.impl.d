lib/baselines/geist.ml: Array Float Graphlib List Outcome Param Prng Stats
