lib/baselines/gbt_tuner.mli: Gbt Outcome Param Prng
