lib/baselines/gp_tuner.mli: Outcome Param Prng
