lib/baselines/perfnet.mli: Nn Outcome Param Prng
