lib/baselines/exhaustive.ml: Array Dataset Outcome
