type options = { n_init : int; noise : float; refit_every : int; max_pool : int }

let default_options = { n_init = 20; noise = 1e-4; refit_every = 1; max_pool = 2000 }

let run ?(options = default_options) ~rng ~space ~objective ~budget () =
  if budget < 1 then invalid_arg "Gp_tuner.run: budget must be at least 1";
  if options.n_init < 1 then invalid_arg "Gp_tuner.run: n_init must be at least 1";
  if options.refit_every < 1 then invalid_arg "Gp_tuner.run: refit_every must be at least 1";
  if options.max_pool < 1 then invalid_arg "Gp_tuner.run: max_pool must be at least 1";
  let total =
    match Param.Space.cardinality space with
    | Some n -> n
    | None -> invalid_arg "Gp_tuner.run: space must be finite"
  in
  let budget = min budget total in
  let encode rank = Param.Space.encode space (Param.Space.config_of_rank space rank) in
  let evaluated = Hashtbl.create budget in
  let history = ref [] in
  let xs = ref [] and ys = ref [] in
  let evaluate rank =
    let config = Param.Space.config_of_rank space rank in
    let y = objective config in
    Hashtbl.replace evaluated rank ();
    history := (config, y) :: !history;
    xs := encode rank :: !xs;
    ys := log (Stdlib.max 1e-12 y) :: !ys
  in
  let init = Prng.Rng.sample_without_replacement rng (min options.n_init budget) total in
  Array.iter evaluate init;
  let model = ref None in
  let since_fit = ref options.refit_every in
  while List.length !history < budget do
    if !since_fit >= options.refit_every || !model = None then begin
      model :=
        Some
          (Gp.Gpr.fit ~noise:options.noise
             ~inputs:(Array.of_list !xs)
             ~targets:(Array.of_list !ys)
             ());
      since_fit := 0
    end;
    let gp = Option.get !model in
    let best_log = List.fold_left Float.min infinity !ys in
    (* Candidate pool: the whole space when small, otherwise a random
       subsample (fresh each iteration, so coverage accumulates). *)
    let pool =
      if total <= options.max_pool then Array.init total (fun i -> i)
      else Prng.Rng.sample_without_replacement rng options.max_pool total
    in
    let best_candidate = ref None in
    Array.iter
      (fun rank ->
        if not (Hashtbl.mem evaluated rank) then begin
          let ei = Gp.Gpr.expected_improvement gp ~best:best_log (encode rank) in
          match !best_candidate with
          | Some (_, s) when s >= ei -> ()
          | Some _ | None -> best_candidate := Some (rank, ei)
        end)
      pool;
    (match !best_candidate with
    | Some (rank, _) -> evaluate rank
    | None ->
        (* The sampled pool was entirely evaluated; fall back to the
           first unevaluated rank. *)
        let rec first r = if Hashtbl.mem evaluated r then first (r + 1) else r in
        evaluate (first 0));
    incr since_fit
  done;
  Outcome.of_history (Array.of_list (List.rev !history))
