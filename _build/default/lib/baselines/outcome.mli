(** Common result shape for every tuner (HiPerBOt and baselines), so
    the metrics layer can compare them uniformly. *)

type t = {
  history : (Param.Config.t * float) array;  (** evaluations in order *)
  best_config : Param.Config.t;
  best_value : float;
  trajectory : float array;  (** best-so-far after each evaluation *)
}

val of_history : (Param.Config.t * float) array -> t
(** Derive best and trajectory. Raises [Invalid_argument] on an empty
    history. *)

val of_tuner_result : Hiperbot.Tuner.result -> t
