(** Exhaustive-best reference (paper §V): the true optimum, found by
    evaluating the whole space. Not a competitor — the horizontal
    reference line in every best-configuration figure. *)

val best : Dataset.Table.t -> Param.Config.t * float

val run : Dataset.Table.t -> Outcome.t
(** The full table as a history, in table order. *)
