type options = { n_init : int; batch_size : int; optimal_quantile : float; beta : float }

let default_options = { n_init = 20; batch_size = 10; optimal_quantile = 0.2; beta = 0.1 }

let run ?(options = default_options) ?graph ~rng ~space ~objective ~budget () =
  if budget < 1 then invalid_arg "Geist.run: budget must be at least 1";
  if options.n_init < 1 then invalid_arg "Geist.run: n_init must be at least 1";
  if options.batch_size < 1 then invalid_arg "Geist.run: batch_size must be at least 1";
  let total =
    match Param.Space.cardinality space with
    | Some n -> n
    | None -> invalid_arg "Geist.run: space must be finite"
  in
  let graph = match graph with Some g -> g | None -> Graphlib.Lattice.build space in
  if Graphlib.Graph.n_nodes graph <> total then
    invalid_arg "Geist.run: graph node count does not match the space";
  let evaluated = Array.make total false in
  let values = Array.make total 0. in
  let history = ref [] in
  let n_evaluated = ref 0 in
  let evaluate rank =
    let config = Param.Space.config_of_rank space rank in
    let y = objective config in
    evaluated.(rank) <- true;
    values.(rank) <- y;
    history := (config, y) :: !history;
    incr n_evaluated
  in
  (* Bootstrap with distinct random nodes. *)
  let budget = min budget total in
  let init = Prng.Rng.sample_without_replacement rng (min options.n_init budget) total in
  Array.iter evaluate init;
  (* The optimal/non-optimal threshold is set once, from the
     bootstrap sample (ref [10] labels against an initial threshold).
     This is what makes GEIST chase "better than the bootstrap bar"
     rather than the elite bins — the weakness the paper observes. *)
  let threshold =
    let observed = Array.of_list (List.map snd !history) in
    let t, _, _ = Stats.Quantile.split_at_quantile observed options.optimal_quantile in
    t
  in
  (* Rounds: label observed nodes against the threshold, propagate,
     evaluate the most-believed unevaluated batch. *)
  while !n_evaluated < budget do
    let optimal = ref [] and non_optimal = ref [] in
    for rank = 0 to total - 1 do
      if evaluated.(rank) then
        if values.(rank) < threshold then optimal := rank :: !optimal
        else non_optimal := rank :: !non_optimal
    done;
    (* The quantile split can leave the optimal side empty when many
       observations tie at the minimum; promote the current minima. *)
    if !optimal = [] then begin
      let m = List.fold_left (fun acc (_, y) -> Float.min acc y) infinity !history in
      let opt = ref [] and non = ref [] in
      for rank = 0 to total - 1 do
        if evaluated.(rank) then if values.(rank) = m then opt := rank :: !opt else non := rank :: !non
      done;
      optimal := !opt;
      non_optimal := !non
    end;
    let beliefs =
      Graphlib.Camlp.propagate ~beta:options.beta graph
        {
          Graphlib.Camlp.optimal = Array.of_list !optimal;
          non_optimal = Array.of_list !non_optimal;
        }
    in
    (* Pick the top-belief unevaluated nodes for this round. *)
    let batch = min options.batch_size (budget - !n_evaluated) in
    let candidates = Array.init total (fun i -> i) in
    Array.sort
      (fun a b ->
        match compare beliefs.(b) beliefs.(a) with 0 -> compare a b | c -> c)
      candidates;
    let taken = ref 0 in
    let i = ref 0 in
    while !taken < batch && !i < total do
      let rank = candidates.(!i) in
      if not evaluated.(rank) then begin
        evaluate rank;
        incr taken
      end;
      incr i
    done;
    if !taken = 0 then (* everything evaluated *) assert (!n_evaluated >= budget)
  done;
  Outcome.of_history (Array.of_list (List.rev !history))
