type t = {
  history : (Param.Config.t * float) array;
  best_config : Param.Config.t;
  best_value : float;
  trajectory : float array;
}

let of_history history =
  if Array.length history = 0 then invalid_arg "Outcome.of_history: empty history";
  let best = ref history.(0) in
  let trajectory =
    Array.map
      (fun (c, y) ->
        if y < snd !best then best := (c, y);
        snd !best)
      history
  in
  let best_config, best_value = !best in
  { history; best_config; best_value; trajectory }

let of_tuner_result (r : Hiperbot.Tuner.result) =
  {
    history = r.Hiperbot.Tuner.history;
    best_config = r.Hiperbot.Tuner.best_config;
    best_value = r.Hiperbot.Tuner.best_value;
    trajectory = r.Hiperbot.Tuner.trajectory;
  }
