let run ~rng ~space ~objective ~budget () =
  if budget < 1 then invalid_arg "Random_search.run: budget must be at least 1";
  let total =
    match Param.Space.cardinality space with
    | Some n -> n
    | None -> invalid_arg "Random_search.run: space must be finite"
  in
  let n = min budget total in
  let ranks = Prng.Rng.sample_without_replacement rng n total in
  let history =
    Array.map
      (fun rank ->
        let config = Param.Space.config_of_rank space rank in
        (config, objective config))
      ranks
  in
  Outcome.of_history history
