(** Boosted-regression-trees surrogate tuner (Bergstra et al., paper
    ref [2] — the supervised-learning alternative discussed in the
    related work).

    Loop: random initialization, then repeatedly fit a gradient-
    boosted-trees regressor on the one-hot encoded observations and
    evaluate the pool candidate with the lowest predicted objective,
    with an epsilon-greedy random pick for exploration (a pure greedy
    surrogate stalls on its own bias — exactly the weakness the paper
    attributes to non-active supervised methods). *)

type options = {
  n_init : int;  (** default 20 *)
  refit_every : int;  (** refit interval (default 5) *)
  epsilon : float;  (** random-pick probability per iteration (default 0.1) *)
  model : Gbt.Boosted.params;
}

val default_options : options

val run :
  ?options:options ->
  rng:Prng.Rng.t ->
  space:Param.Space.t ->
  objective:(Param.Config.t -> float) ->
  budget:int ->
  unit ->
  Outcome.t
(** Requires a finite space. Objectives are log-transformed
    internally. *)
