type options = { n_init : int; refit_every : int; epsilon : float; model : Gbt.Boosted.params }

let default_options =
  {
    n_init = 20;
    refit_every = 5;
    epsilon = 0.1;
    model = { Gbt.Boosted.default_params with n_trees = 60 };
  }

let run ?(options = default_options) ~rng ~space ~objective ~budget () =
  if budget < 1 then invalid_arg "Gbt_tuner.run: budget must be at least 1";
  if options.n_init < 1 then invalid_arg "Gbt_tuner.run: n_init must be at least 1";
  if options.refit_every < 1 then invalid_arg "Gbt_tuner.run: refit_every must be at least 1";
  if options.epsilon < 0. || options.epsilon > 1. then invalid_arg "Gbt_tuner.run: epsilon outside [0, 1]";
  let total =
    match Param.Space.cardinality space with
    | Some n -> n
    | None -> invalid_arg "Gbt_tuner.run: space must be finite"
  in
  let budget = min budget total in
  let encode rank = Param.Space.encode space (Param.Space.config_of_rank space rank) in
  let evaluated = Hashtbl.create budget in
  let history = ref [] in
  let xs = ref [] and ys = ref [] in
  let evaluate rank =
    let config = Param.Space.config_of_rank space rank in
    let y = objective config in
    Hashtbl.replace evaluated rank ();
    history := (config, y) :: !history;
    xs := encode rank :: !xs;
    ys := log (Stdlib.max 1e-12 y) :: !ys
  in
  Array.iter evaluate (Prng.Rng.sample_without_replacement rng (min options.n_init budget) total);
  let model = ref None in
  let since_fit = ref options.refit_every in
  let random_unevaluated () =
    let rec draw () =
      let rank = Prng.Rng.int rng total in
      if Hashtbl.mem evaluated rank then draw () else rank
    in
    draw ()
  in
  while List.length !history < budget do
    if Prng.Rng.float rng < options.epsilon then evaluate (random_unevaluated ())
    else begin
      if !since_fit >= options.refit_every || !model = None then begin
        model :=
          Some
            (Gbt.Boosted.fit ~params:options.model
               ~inputs:(Array.of_list !xs)
               ~targets:(Array.of_list !ys)
               ());
        since_fit := 0
      end;
      let gbt = Option.get !model in
      let best = ref None in
      for rank = 0 to total - 1 do
        if not (Hashtbl.mem evaluated rank) then begin
          let pred = Gbt.Boosted.predict gbt (encode rank) in
          match !best with
          | Some (_, p) when p <= pred -> ()
          | Some _ | None -> best := Some (rank, pred)
        end
      done;
      (match !best with Some (rank, _) -> evaluate rank | None -> evaluate (random_unevaluated ()));
      incr since_fit
    end
  done;
  Outcome.of_history (Array.of_list (List.rev !history))
