(** GEIST baseline (Thiagarajan et al., ICS 2018 — paper ref [10]).

    Semi-supervised adaptive sampling: the finite parameter space is a
    lattice graph ({!Graphlib.Lattice}); evaluated configurations are
    labeled optimal / non-optimal against a quantile threshold of the
    observed objectives; CAMLP label propagation (ref [16]) spreads
    beliefs to unevaluated nodes; each round the batch of unevaluated
    nodes with the highest optimal-belief is evaluated, labels are
    recomputed, and propagation repeats. *)

type options = {
  n_init : int;  (** random bootstrap evaluations (default 20) *)
  batch_size : int;  (** evaluations per propagation round (default 10) *)
  optimal_quantile : float;  (** label threshold on observed objectives (default 0.2) *)
  beta : float;  (** CAMLP propagation strength (default 0.1) *)
}

val default_options : options

val run :
  ?options:options ->
  ?graph:Graphlib.Graph.t ->
  rng:Prng.Rng.t ->
  space:Param.Space.t ->
  objective:(Param.Config.t -> float) ->
  budget:int ->
  unit ->
  Outcome.t
(** Requires a finite space. [graph] lets callers share one lattice
    graph across repetitions (it depends only on the space); when
    omitted it is built internally. Node ids must equal
    {!Param.Space.config_rank} order, as {!Graphlib.Lattice.build}
    produces. *)
