lib/parallel/pool.ml: Array Atomic Condition Domain Mutex Queue Stdlib
