lib/parallel/pool.mli:
