type node = Leaf of float | Split of { feature : int; threshold : float; left : node; right : node }
type t = { root : node }
type params = { max_depth : int; min_samples_leaf : int }

let default_params = { max_depth = 4; min_samples_leaf = 2 }

let mean_of targets indices =
  let acc = ref 0. in
  Array.iter (fun i -> acc := !acc +. targets.(i)) indices;
  !acc /. float_of_int (Array.length indices)

(* Best split of [indices] on [feature]: scan the samples sorted by
   the feature value and maximize the SSE reduction, which for a
   left/right partition equals
     n_l * mean_l^2 + n_r * mean_r^2 - n * mean^2
   (constant total sum of squares cancels). Returns
   (threshold, score) or None if no valid split exists. *)
let best_split_on ~inputs ~targets ~min_samples_leaf indices feature =
  let n = Array.length indices in
  let order = Array.copy indices in
  Array.sort (fun a b -> compare inputs.(a).(feature) inputs.(b).(feature)) order;
  let total = Array.fold_left (fun acc i -> acc +. targets.(i)) 0. order in
  let best = ref None in
  let left_sum = ref 0. in
  for k = 0 to n - 2 do
    let i = order.(k) in
    left_sum := !left_sum +. targets.(i);
    let x = inputs.(i).(feature) in
    let x_next = inputs.(order.(k + 1)).(feature) in
    let n_left = k + 1 and n_right = n - k - 1 in
    if x_next > x && n_left >= min_samples_leaf && n_right >= min_samples_leaf then begin
      let right_sum = total -. !left_sum in
      let score =
        (!left_sum *. !left_sum /. float_of_int n_left)
        +. (right_sum *. right_sum /. float_of_int n_right)
      in
      match !best with
      | Some (_, best_score) when best_score >= score -> ()
      | Some _ | None -> best := Some ((x +. x_next) /. 2., score)
    end
  done;
  !best

let fit ?(params = default_params) ~inputs ~targets () =
  let n = Array.length inputs in
  if n = 0 then invalid_arg "Tree.fit: empty data";
  if n <> Array.length targets then invalid_arg "Tree.fit: input/target length mismatch";
  if params.max_depth < 0 then invalid_arg "Tree.fit: negative max_depth";
  if params.min_samples_leaf < 1 then invalid_arg "Tree.fit: min_samples_leaf must be positive";
  let n_features = Array.length inputs.(0) in
  let rec build indices depth =
    let leaf () = Leaf (mean_of targets indices) in
    if depth >= params.max_depth || Array.length indices < 2 * params.min_samples_leaf then leaf ()
    else begin
      let best = ref None in
      for feature = 0 to n_features - 1 do
        match best_split_on ~inputs ~targets ~min_samples_leaf:params.min_samples_leaf indices feature with
        | None -> ()
        | Some (threshold, score) -> begin
            match !best with
            | Some (_, _, best_score) when best_score >= score -> ()
            | Some _ | None -> best := Some (feature, threshold, score)
          end
      done;
      match !best with
      | None -> leaf ()
      | Some (feature, threshold, _) ->
          let left = Array.of_seq (Seq.filter (fun i -> inputs.(i).(feature) <= threshold) (Array.to_seq indices)) in
          let right = Array.of_seq (Seq.filter (fun i -> inputs.(i).(feature) > threshold) (Array.to_seq indices)) in
          Split { feature; threshold; left = build left (depth + 1); right = build right (depth + 1) }
    end
  in
  { root = build (Array.init n (fun i -> i)) 0 }

let predict t x =
  let rec walk = function
    | Leaf value -> value
    | Split { feature; threshold; left; right } ->
        if x.(feature) <= threshold then walk left else walk right
  in
  walk t.root

let n_leaves t =
  let rec count = function Leaf _ -> 1 | Split { left; right; _ } -> count left + count right in
  count t.root

let depth t =
  let rec deep = function
    | Leaf _ -> 0
    | Split { left; right; _ } -> 1 + Stdlib.max (deep left) (deep right)
  in
  deep t.root
