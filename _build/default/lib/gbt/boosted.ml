type t = { base : float; learning_rate : float; trees : Tree.t array }
type params = { n_trees : int; learning_rate : float; tree : Tree.params }

let default_params = { n_trees = 100; learning_rate = 0.1; tree = Tree.default_params }

let fit ?(params = default_params) ~inputs ~targets () =
  let n = Array.length inputs in
  if n = 0 then invalid_arg "Boosted.fit: empty data";
  if n <> Array.length targets then invalid_arg "Boosted.fit: input/target length mismatch";
  if params.n_trees < 1 then invalid_arg "Boosted.fit: need at least one tree";
  if params.learning_rate <= 0. || params.learning_rate > 1. then
    invalid_arg "Boosted.fit: learning_rate outside (0, 1]";
  let base = Array.fold_left ( +. ) 0. targets /. float_of_int n in
  let predictions = Array.make n base in
  let residuals = Array.make n 0. in
  let trees =
    Array.init params.n_trees (fun _ ->
        for i = 0 to n - 1 do
          residuals.(i) <- targets.(i) -. predictions.(i)
        done;
        let tree = Tree.fit ~params:params.tree ~inputs ~targets:residuals () in
        for i = 0 to n - 1 do
          predictions.(i) <- predictions.(i) +. (params.learning_rate *. Tree.predict tree inputs.(i))
        done;
        tree)
  in
  { base; learning_rate = params.learning_rate; trees }

let predict (t : t) x =
  Array.fold_left (fun acc tree -> acc +. (t.learning_rate *. Tree.predict tree x)) t.base t.trees

let n_trees (t : t) = Array.length t.trees

let mse_of preds targets =
  let n = Array.length targets in
  let acc = ref 0. in
  for i = 0 to n - 1 do
    let d = preds.(i) -. targets.(i) in
    acc := !acc +. (d *. d)
  done;
  !acc /. float_of_int n

let training_mse t ~inputs ~targets =
  if Array.length inputs <> Array.length targets then
    invalid_arg "Boosted.training_mse: input/target length mismatch";
  mse_of (Array.map (predict t) inputs) targets

let staged_mse (t : t) ~inputs ~targets =
  if Array.length inputs <> Array.length targets then
    invalid_arg "Boosted.staged_mse: input/target length mismatch";
  let n = Array.length inputs in
  let preds = Array.make n t.base in
  Array.map
    (fun tree ->
      for i = 0 to n - 1 do
        preds.(i) <- preds.(i) +. (t.learning_rate *. Tree.predict tree inputs.(i))
      done;
      mse_of preds targets)
    t.trees
