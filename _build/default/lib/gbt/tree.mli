(** CART-style regression trees (squared-error splits).

    The weak learner of {!Gbt}. Features are dense float vectors (the
    one-hot encodings of {!Param.Space.encode} in the autotuning
    use). *)

type t

type params = {
  max_depth : int;  (** root has depth 0; a leaf at max_depth never splits *)
  min_samples_leaf : int;  (** both children of a split must have at least this many samples *)
}

val default_params : params
(** depth 4, min leaf 2. *)

val fit : ?params:params -> inputs:float array array -> targets:float array -> unit -> t
(** Greedy variance-reduction fitting. Raises [Invalid_argument] on
    empty or mismatched data. *)

val predict : t -> float array -> float
val n_leaves : t -> int
val depth : t -> int
