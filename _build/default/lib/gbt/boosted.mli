(** Gradient-boosted regression trees for squared loss.

    The supervised surrogate of Bergstra et al. (paper ref [2]),
    implemented as the model behind the boosted-trees baseline tuner.
    Boosting on squared loss fits each tree to the current residuals
    and adds it with a shrinkage factor. *)

type t

type params = {
  n_trees : int;
  learning_rate : float;  (** shrinkage in (0, 1] *)
  tree : Tree.params;
}

val default_params : params
(** 100 trees, shrinkage 0.1, default tree params. *)

val fit : ?params:params -> inputs:float array array -> targets:float array -> unit -> t
(** Raises [Invalid_argument] on empty/mismatched data or bad
    hyperparameters. *)

val predict : t -> float array -> float
val n_trees : t -> int

val training_mse : t -> inputs:float array array -> targets:float array -> float
(** Mean squared error of the ensemble on a dataset. *)

val staged_mse : t -> inputs:float array array -> targets:float array -> float array
(** MSE after each boosting stage — for checking that boosting
    monotonically fits the training set. *)
