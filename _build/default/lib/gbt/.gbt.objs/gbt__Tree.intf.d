lib/gbt/tree.mli:
