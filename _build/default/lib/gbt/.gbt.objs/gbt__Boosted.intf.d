lib/gbt/boosted.mli: Tree
