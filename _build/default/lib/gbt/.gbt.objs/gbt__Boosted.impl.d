lib/gbt/boosted.ml: Array Tree
