lib/gbt/tree.ml: Array Seq Stdlib
