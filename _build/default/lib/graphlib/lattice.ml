let build space =
  let counts =
    Array.map
      (fun spec ->
        match Param.Spec.n_choices spec with
        | Some n -> n
        | None -> invalid_arg "Lattice.build: continuous parameter")
      (Param.Space.specs space)
  in
  let n_params = Array.length counts in
  let total = Array.fold_left ( * ) 1 counts in
  (* Strides of the mixed-radix rank encoding (most-significant
     parameter first, matching Space.config_rank). *)
  let strides = Array.make n_params 1 in
  for i = n_params - 2 downto 0 do
    strides.(i) <- strides.(i + 1) * counts.(i + 1)
  done;
  let adjacency = Array.make total [||] in
  let digits = Array.make n_params 0 in
  for rank = 0 to total - 1 do
    let rest = ref rank in
    for i = n_params - 1 downto 0 do
      digits.(i) <- !rest mod counts.(i);
      rest := !rest / counts.(i)
    done;
    let nbrs = ref [] in
    for i = 0 to n_params - 1 do
      let spec = Param.Space.spec space i in
      let base = rank - (digits.(i) * strides.(i)) in
      match Param.Spec.domain spec with
      | Param.Spec.Ordinal _ ->
          if digits.(i) > 0 then nbrs := base + ((digits.(i) - 1) * strides.(i)) :: !nbrs;
          if digits.(i) < counts.(i) - 1 then nbrs := base + ((digits.(i) + 1) * strides.(i)) :: !nbrs
      | Param.Spec.Categorical _ ->
          for c = 0 to counts.(i) - 1 do
            if c <> digits.(i) then nbrs := base + (c * strides.(i)) :: !nbrs
          done
      | Param.Spec.Continuous _ -> assert false
    done;
    adjacency.(rank) <- Array.of_list !nbrs
  done;
  Graph.of_adjacency adjacency
