(** Brute-force k-nearest-neighbour graph over configurations, using
    {!Param.Space.distance}. An alternative propagation graph for the
    GEIST baseline (ablation; the lattice graph is the default).
    O(n^2) distance evaluations — build once and share. *)

val build : Param.Space.t -> Param.Config.t array -> k:int -> Graph.t
(** Node [i] is [configs.(i)]. Each node contributes edges to its [k]
    nearest peers (ties broken by index); the union is symmetrized.
    Requires [0 < k < Array.length configs]. *)
