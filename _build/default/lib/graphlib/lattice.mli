(** Parameter-space lattice graphs.

    GEIST (paper ref [10]) represents the parameter space as an
    undirected graph and propagates optimal/non-optimal labels over
    it. Following that construction, two configurations are adjacent
    when they differ in exactly one parameter, and in that parameter
    by one "step": adjacent levels for ordinal parameters, any other
    label for categorical ones (labels are unordered, so each
    categorical axis is a clique). Node ids are the configuration's
    {!Param.Space.config_rank}. *)

val build : Param.Space.t -> Graph.t
(** Raises [Invalid_argument] for continuous spaces. *)
