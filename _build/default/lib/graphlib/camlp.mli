(** CAMLP: Confidence-Aware Modulated Label Propagation
    (Yamaguchi, Faloutsos, Kitagawa, SDM 2016 — paper ref [16]).

    Semi-supervised binary node classification: a few nodes carry
    observed labels (optimal / non-optimal configurations, in GEIST's
    use) and beliefs diffuse to the rest of the graph. Each node's
    belief vector solves

      f_i = (b_i + beta * sum_{j ~ i} H f_j) / (1 + beta * deg_i)

    where [b_i] is the one-hot prior for labeled nodes (uniform for
    unlabeled), [H] the 2x2 label-compatibility modulation matrix
    (identity = homophily), and [beta] the propagation strength. The
    fixed point is computed by Jacobi iteration, which converges for
    any [beta >= 0] since the update is an average weighted by
    positive coefficients. *)

type labels = { optimal : int array; non_optimal : int array }

val propagate :
  ?beta:float ->
  ?homophily:float ->
  ?max_iters:int ->
  ?tolerance:float ->
  Graph.t ->
  labels ->
  float array
(** [propagate graph labels] returns, per node, the belief that the
    node is optimal (in [0, 1]).

    [beta] (default 0.1) is the propagation strength; [homophily]
    (default 1.0) in [-1, 1] scales the off-diagonal modulation (1 =
    pure homophily); [max_iters] (default 200) and [tolerance]
    (default 1e-6, max-norm on belief change) bound the Jacobi
    iteration. Labeled nodes appearing in both label sets raise
    [Invalid_argument]. *)
