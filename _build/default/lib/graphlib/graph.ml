type t = { adjacency : int array array; n_edges : int }

let of_edges ~n edges =
  if n < 0 then invalid_arg "Graph.of_edges: negative node count";
  let seen = Hashtbl.create (List.length edges) in
  let buckets = Array.make n [] in
  List.iter
    (fun (u, v) ->
      if u < 0 || u >= n || v < 0 || v >= n then invalid_arg "Graph.of_edges: node out of range";
      if u = v then invalid_arg "Graph.of_edges: self-loop";
      let key = (min u v, max u v) in
      if Hashtbl.mem seen key then invalid_arg "Graph.of_edges: duplicate edge";
      Hashtbl.add seen key ();
      buckets.(u) <- v :: buckets.(u);
      buckets.(v) <- u :: buckets.(v))
    edges;
  let adjacency = Array.map (fun l -> Array.of_list (List.rev l)) buckets in
  { adjacency; n_edges = Hashtbl.length seen }

let of_adjacency adjacency =
  let n = Array.length adjacency in
  let count = ref 0 in
  Array.iteri
    (fun u nbrs ->
      Array.iter
        (fun v ->
          if v < 0 || v >= n then invalid_arg "Graph.of_adjacency: node out of range";
          if v = u then invalid_arg "Graph.of_adjacency: self-loop";
          if not (Array.exists (fun w -> w = u) adjacency.(v)) then
            invalid_arg "Graph.of_adjacency: asymmetric adjacency";
          incr count)
        nbrs)
    adjacency;
  { adjacency; n_edges = !count / 2 }

let n_nodes t = Array.length t.adjacency
let n_edges t = t.n_edges

let degree t u =
  if u < 0 || u >= n_nodes t then invalid_arg "Graph.degree: node out of range";
  Array.length t.adjacency.(u)

let neighbors t u =
  if u < 0 || u >= n_nodes t then invalid_arg "Graph.neighbors: node out of range";
  t.adjacency.(u)

let mem_edge t u v = Array.exists (fun w -> w = v) (neighbors t u)

let fold_neighbors t u ~init ~f =
  if u < 0 || u >= n_nodes t then invalid_arg "Graph.fold_neighbors: node out of range";
  Array.fold_left f init t.adjacency.(u)

let connected_components t =
  let n = n_nodes t in
  let comp = Array.make n (-1) in
  let next = ref 0 in
  let stack = Stack.create () in
  for start = 0 to n - 1 do
    if comp.(start) = -1 then begin
      let id = !next in
      incr next;
      Stack.push start stack;
      comp.(start) <- id;
      while not (Stack.is_empty stack) do
        let u = Stack.pop stack in
        Array.iter
          (fun v ->
            if comp.(v) = -1 then begin
              comp.(v) <- id;
              Stack.push v stack
            end)
          t.adjacency.(u)
      done
    end
  done;
  comp

let is_connected t =
  let comp = connected_components t in
  Array.for_all (fun c -> c = 0) comp
