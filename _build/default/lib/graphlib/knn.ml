let build space configs ~k =
  let n = Array.length configs in
  if k <= 0 || k >= n then invalid_arg "Knn.build: k must be in (0, n)";
  let neighbor_sets = Array.make n [] in
  let dist = Array.make n 0. in
  let order = Array.make n 0 in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      order.(j) <- j;
      dist.(j) <- if i = j then infinity else Param.Space.distance space configs.(i) configs.(j)
    done;
    (* Partial selection of the k smallest distances. *)
    Array.sort (fun a b -> compare dist.(a) dist.(b)) order;
    for r = 0 to k - 1 do
      let j = order.(r) in
      let u = min i j and v = max i j in
      neighbor_sets.(u) <- v :: neighbor_sets.(u)
    done
  done;
  let seen = Hashtbl.create (n * k) in
  let edges = ref [] in
  Array.iteri
    (fun u vs ->
      List.iter
        (fun v ->
          if not (Hashtbl.mem seen (u, v)) then begin
            Hashtbl.add seen (u, v) ();
            edges := (u, v) :: !edges
          end)
        vs)
    neighbor_sets;
  Graph.of_edges ~n !edges
