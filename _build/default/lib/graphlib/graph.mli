(** Undirected graphs over integer node ids [0 .. n-1], stored as
    adjacency lists. Built once per parameter space and reused across
    experiment repetitions (the GEIST baseline's propagation graph). *)

type t

val of_edges : n:int -> (int * int) list -> t
(** Build from an edge list; self-loops and duplicate edges are
    rejected with [Invalid_argument]. *)

val of_adjacency : int array array -> t
(** Build from symmetric adjacency lists (trusted, used by builders
    that construct symmetric structure directly). Raises
    [Invalid_argument] if the lists are not symmetric. *)

val n_nodes : t -> int
val n_edges : t -> int
val degree : t -> int -> int
val neighbors : t -> int -> int array
(** The stored array — do not mutate. *)

val mem_edge : t -> int -> int -> bool
val fold_neighbors : t -> int -> init:'a -> f:('a -> int -> 'a) -> 'a

val connected_components : t -> int array
(** Component id per node, ids dense from 0. *)

val is_connected : t -> bool
