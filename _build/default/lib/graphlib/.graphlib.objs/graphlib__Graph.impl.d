lib/graphlib/graph.ml: Array Hashtbl List Stack
