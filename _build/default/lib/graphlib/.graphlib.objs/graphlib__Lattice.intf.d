lib/graphlib/lattice.mli: Graph Param
