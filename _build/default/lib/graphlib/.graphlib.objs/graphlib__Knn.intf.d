lib/graphlib/knn.mli: Graph Param
