lib/graphlib/camlp.mli: Graph
