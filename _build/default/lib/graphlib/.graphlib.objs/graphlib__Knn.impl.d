lib/graphlib/knn.ml: Array Graph Hashtbl List Param
