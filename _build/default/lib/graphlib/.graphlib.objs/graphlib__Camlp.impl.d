lib/graphlib/camlp.ml: Array Float Graph
