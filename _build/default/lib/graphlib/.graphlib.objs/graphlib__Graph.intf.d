lib/graphlib/graph.mli:
