lib/graphlib/lattice.ml: Array Graph Param
