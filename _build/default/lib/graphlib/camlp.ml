type labels = { optimal : int array; non_optimal : int array }

let propagate ?(beta = 0.1) ?(homophily = 1.0) ?(max_iters = 200) ?(tolerance = 1e-6) graph labels =
  if beta < 0. then invalid_arg "Camlp.propagate: negative beta";
  if homophily < -1. || homophily > 1. then invalid_arg "Camlp.propagate: homophily outside [-1, 1]";
  let n = Graph.n_nodes graph in
  (* Priors: one-hot for labeled nodes, uninformative elsewhere. *)
  let prior_opt = Array.make n 0.5 in
  let mark value nodes other =
    Array.iter
      (fun u ->
        if u < 0 || u >= n then invalid_arg "Camlp.propagate: labeled node out of range";
        if prior_opt.(u) = other then invalid_arg "Camlp.propagate: node labeled both ways";
        prior_opt.(u) <- value)
      nodes
  in
  mark 1.0 labels.optimal 0.0;
  mark 0.0 labels.non_optimal 1.0;
  (* 2x2 modulation matrix row for the "optimal" belief: h_same f_opt
     + h_diff f_nonopt, parameterized by the homophily strength. *)
  let h_same = (1. +. homophily) /. 2. in
  let h_diff = (1. -. homophily) /. 2. in
  let f = Array.copy prior_opt in
  let next = Array.make n 0. in
  let rec iterate remaining =
    if remaining = 0 then ()
    else begin
      let delta = ref 0. in
      for u = 0 to n - 1 do
        let acc =
          Graph.fold_neighbors graph u ~init:0. ~f:(fun acc v ->
              acc +. (h_same *. f.(v)) +. (h_diff *. (1. -. f.(v))))
        in
        let deg = float_of_int (Graph.degree graph u) in
        let updated = (prior_opt.(u) +. (beta *. acc)) /. (1. +. (beta *. deg)) in
        next.(u) <- updated;
        let d = Float.abs (updated -. f.(u)) in
        if d > !delta then delta := d
      done;
      Array.blit next 0 f 0 n;
      if !delta > tolerance then iterate (remaining - 1)
    end
  in
  iterate max_iters;
  f
