(* hiperbot command-line interface.

   Subcommands: list, describe, tune, tune-csv, transfer, importance,
   export, replay, trace, compare, serve.
   Every built-in dataset of the reproduction is addressable by name;
   `export` writes a dataset as CSV so external tools (or the
   `Dataset.Table.of_csv` loader) can round-trip it. *)

open Cmdliner

let find_table name =
  match Hpcsim.Registry.find name with
  | entry -> Ok (entry.Hpcsim.Registry.table ())
  | exception Not_found ->
      Error
        (Printf.sprintf "unknown dataset %S (try: %s)" name
           (String.concat ", " Hpcsim.Registry.names))

let dataset_arg =
  let doc = "Built-in dataset name (see the `list' subcommand)." in
  Arg.(required & opt (some string) None & info [ "d"; "dataset" ] ~docv:"NAME" ~doc)

let seed_arg =
  let doc = "PRNG seed; runs are fully deterministic given the seed." in
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"N" ~doc)

let budget_arg default =
  let doc = "Evaluation budget (number of objective evaluations)." in
  Arg.(value & opt int default & info [ "b"; "budget" ] ~docv:"N" ~doc)

(* ---- transfer-learning flags (shared by tune and transfer) ---- *)

(* "NAME:2.5" -> ("NAME", 2.5); a suffix that is not a float is part
   of the name, so plain paths with colons still work. *)
let split_weight s =
  match String.rindex_opt s ':' with
  | Some i -> (
      match float_of_string_opt (String.sub s (i + 1) (String.length s - i - 1)) with
      | Some w -> (String.sub s 0 i, w)
      | None -> (s, 1.0))
  | None -> (s, 1.0)

(* Reject duplicate source names and non-finite weights before
   anything is loaded or fitted: both are command-line mistakes (the
   same log listed twice doubles its prior mass silently; a nan/inf
   weight would only surface deep inside the surrogate merge). *)
let check_source_specs specs =
  let seen = Hashtbl.create 8 in
  try
    List.iter
      (fun spec ->
        let name, w = split_weight spec in
        if not (Float.is_finite w) then
          failwith (Printf.sprintf "transfer source %s: weight is not finite" name);
        if Hashtbl.mem seen name then
          failwith (Printf.sprintf "transfer source %s: given more than once" name);
        Hashtbl.add seen name ())
      specs;
    Ok ()
  with Failure msg -> Error msg

let gate_thresh_arg =
  let doc =
    "Safeguarded-transfer trust threshold in (0, 1): a source prior whose rank agreement with \
     the unbiased init observations stays below $(docv) is attenuated, then dropped for the \
     rest of the campaign. Defaults to the library's calibrated threshold."
  in
  Arg.(value & opt (some float) None & info [ "transfer-gate" ] ~docv:"THRESH" ~doc)

let no_gate_arg =
  let doc = "Disable safeguarded-transfer gating: keep every source prior all campaign." in
  Arg.(value & flag & info [ "no-transfer-gate" ] ~doc)

(* Resolve the two gate flags into [Some options] (gate on) / [None]
   (gate off); gating is on by default whenever transfer sources are
   in play. *)
let resolve_gate thresh no_gate =
  match (thresh, no_gate) with
  | Some _, true -> Error "--transfer-gate and --no-transfer-gate cannot be combined"
  | None, true -> Ok None
  | None, false -> Ok (Some Hiperbot.Gate.default_options)
  | Some t, false ->
      if Float.is_finite t && t > 0. && t < 1. then
        Ok (Some { Hiperbot.Gate.default_options with Hiperbot.Gate.threshold = t })
      else Error "--transfer-gate THRESH must lie strictly between 0 and 1"

let weighting_arg =
  let doc =
    "Prior weighting mode: $(b,constant) uses the given weights as-is; $(b,js) scales each \
     source's weight by its Jensen-Shannon agreement with the pooled-source consensus."
  in
  Arg.(
    value
    & opt
        (enum [ ("constant", Hiperbot.Transfer.Constant_weights); ("js", Hiperbot.Transfer.Js_guided) ])
        Hiperbot.Transfer.Constant_weights
    & info [ "transfer-weighting" ] ~docv:"MODE" ~doc)

let decay_conv =
  let parse s =
    match String.lowercase_ascii s with
    | "constant" -> Ok Hiperbot.Transfer.Constant
    | spec -> (
        match String.index_opt spec ':' with
        | Some i -> (
            let kind = String.sub spec 0 i in
            let num = float_of_string_opt (String.sub spec (i + 1) (String.length spec - i - 1)) in
            match (kind, num) with
            | "exp", Some h when Float.is_finite h && h > 0. ->
                Ok (Hiperbot.Transfer.Exponential { half_life = h })
            | "recip", Some n0 when Float.is_finite n0 && n0 > 0. ->
                Ok (Hiperbot.Transfer.Reciprocal { n0 })
            | _ -> Error (`Msg (Printf.sprintf "invalid decay spec %S" s)))
        | None -> Error (`Msg (Printf.sprintf "invalid decay spec %S (try constant, exp:H, recip:N)" s)))
  in
  let print ppf = function
    | Hiperbot.Transfer.Constant -> Format.pp_print_string ppf "constant"
    | Hiperbot.Transfer.Exponential { half_life } -> Format.fprintf ppf "exp:%g" half_life
    | Hiperbot.Transfer.Reciprocal { n0 } -> Format.fprintf ppf "recip:%g" n0
    | Hiperbot.Transfer.Custom _ -> Format.pp_print_string ppf "<custom>"
  in
  Arg.conv (parse, print)

let decay_arg =
  let doc =
    "Prior decay schedule: $(b,constant) keeps the prior at full strength; $(b,exp:H) halves the \
     prior weight every H target observations; $(b,recip:N) scales it by N/(N+n)."
  in
  Arg.(value & opt decay_conv Hiperbot.Transfer.Constant & info [ "transfer-decay" ] ~docv:"SPEC" ~doc)

(* Load `--transfer-from FILE[:WEIGHT]` run logs into transfer sources
   for [space]; every failure becomes a clean CLI error. *)
let load_transfer_sources ~space files =
  try
    Ok
      (List.map
         (fun spec ->
           let path, w = split_weight spec in
           let log = Dataset.Runlog.load ~recover:true path in
           if Param.Space.specs log.Dataset.Runlog.space <> Param.Space.specs space then
             failwith (Printf.sprintf "transfer source %s: space does not match the target" path);
           let hist = Dataset.Runlog.history log in
           if Array.length hist = 0 then
             failwith (Printf.sprintf "transfer source %s: no successful evaluations" path);
           (hist, w))
         files)
  with Failure msg | Sys_error msg -> Error msg

(* ---- list ---- *)

let list_cmd =
  let run () =
    List.iter
      (fun e -> Printf.printf "%-14s %s\n" e.Hpcsim.Registry.name e.Hpcsim.Registry.description)
      Hpcsim.Registry.all
  in
  Cmd.v (Cmd.info "list" ~doc:"List the built-in datasets.") Term.(const run $ const ())

(* ---- describe ---- *)

let describe_cmd =
  let run dataset =
    match find_table dataset with
    | Error e -> `Error (false, e)
    | Ok table ->
        let space = Dataset.Table.space table in
        Printf.printf "dataset: %s (%d configurations)\n" (Dataset.Table.name table)
          (Dataset.Table.size table);
        Printf.printf "parameters:\n";
        Array.iter (fun spec -> Format.printf "  %a@." Param.Spec.pp spec) (Param.Space.specs space);
        let ys = Dataset.Table.objectives table in
        Array.sort Float.compare ys;
        let q p = Stats.Quantile.quantile_sorted ys p in
        Printf.printf "objective: min=%.4g p25=%.4g median=%.4g p75=%.4g max=%.4g\n" ys.(0) (q 0.25)
          (q 0.5) (q 0.75)
          ys.(Array.length ys - 1);
        let config, value = Dataset.Table.best table in
        Printf.printf "best: %s -> %.4g\n" (Param.Space.to_string space config) value;
        `Ok ()
  in
  Cmd.v
    (Cmd.info "describe" ~doc:"Show a dataset's parameters and objective distribution.")
    Term.(ret (const run $ dataset_arg))

(* ---- tune ---- *)

let method_arg =
  let doc = "Tuning method: hiperbot, random, geist, gp, or gbt." in
  Arg.(
    value
    & opt
        (enum
           [ ("hiperbot", `Hiperbot); ("random", `Random); ("geist", `Geist); ("gp", `Gp); ("gbt", `Gbt) ])
        `Hiperbot
    & info [ "m"; "method" ] ~docv:"METHOD" ~doc)

let alpha_arg =
  let doc = "HiPerBOt quantile threshold for the good/bad split." in
  Arg.(value & opt float 0.2 & info [ "alpha" ] ~docv:"A" ~doc)

let n_init_arg =
  let doc = "Random initialization samples." in
  Arg.(value & opt int 20 & info [ "n-init" ] ~docv:"N" ~doc)

let proposal_arg =
  let doc = "Use the Proposal selection strategy with $(docv) sampled candidates instead of exhaustive Ranking." in
  Arg.(value & opt (some int) None & info [ "proposal" ] ~docv:"K" ~doc)

let sampled_arg =
  let doc =
    "Keep the Ranking strategy but rank only $(docv) candidates drawn from the good density per \
     guided step instead of scanning the whole pool — O($(docv)) per suggestion regardless of \
     the pool size. Deterministic from --seed, but not bit-identical to the exhaustive scan. \
     Hiperbot method only; incompatible with --proposal."
  in
  Arg.(value & opt (some int) None & info [ "sampled-candidates" ] ~docv:"N" ~doc)

let verbose_arg =
  let doc = "Print every evaluation, not just improvements." in
  Arg.(value & flag & info [ "verbose" ] ~doc)

let trace_file_arg =
  let doc = "Write a structured JSONL campaign trace to $(docv): one flushed line per event (init draws, refit/compile/rank spans, evaluations, retry attempts). Tracing never changes the campaign — traced runs are bit-identical to untraced ones. Hiperbot method only." in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"PATH" ~doc)

let trace_summary_arg =
  let doc = "Print an end-of-campaign telemetry summary (per-phase time breakdown, refit count, p50/p95 refit and ranking latencies). Hiperbot method only." in
  Arg.(value & flag & info [ "trace-summary" ] ~doc)

let save_arg =
  let doc = "Write a run log of every evaluation to $(docv), one flushed line per evaluation so an interrupted run is recoverable (see Dataset.Runlog)." in
  Arg.(value & opt (some string) None & info [ "save" ] ~docv:"PATH" ~doc)

let resume_arg =
  let doc = "Resume an interrupted campaign from the --save run log: recorded evaluations are replayed (not re-run) and the remaining budget is tuned and appended to the log. Requires --save and the hiperbot method." in
  Arg.(value & flag & info [ "resume" ] ~doc)

let faults_arg =
  let doc = "Inject deterministic faults at transient rate $(docv) (plus permanent failures at a quarter and 8x stragglers at half that rate). Hiperbot method only." in
  Arg.(value & opt float 0. & info [ "faults" ] ~docv:"RATE" ~doc)

let fault_seed_arg =
  let doc = "Seed of the fault-injection streams (default: derived from --seed)." in
  Arg.(value & opt (some int) None & info [ "fault-seed" ] ~docv:"N" ~doc)

let retries_arg =
  let doc = "Maximum attempts per configuration (transient failures and timeouts are retried with exponential simulated backoff; permanent failures never are)." in
  Arg.(value & opt int 3 & info [ "retries" ] ~docv:"N" ~doc)

let timeout_arg =
  let doc = "Per-evaluation cost budget: an evaluation above $(docv) is classified as a timeout (straggler) instead of a measurement." in
  Arg.(value & opt (some float) None & info [ "timeout" ] ~docv:"COST" ~doc)

let jobs_arg =
  let doc = "Rank candidates on $(docv) domains. Selections are bit-identical to --jobs 1 (ties break on the candidate's pool position), so this only changes wall-clock time. Hiperbot method only." in
  Arg.(value & opt int 1 & info [ "j"; "jobs" ] ~docv:"N" ~doc)

let async_arg =
  let doc = "Run the asynchronous campaign engine with up to $(docv) evaluations in flight: the surrogate refits on every completion and pending configurations are penalized as constant liars. $(docv) = 1 retraces the synchronous engine bit-for-bit. Composes with --faults, --retries, --timeout, --save/--resume, --trace, and --jobs. Hiperbot method only." in
  Arg.(value & opt (some int) None & info [ "async" ] ~docv:"K" ~doc)

let fidelity_arg =
  let doc =
    "Run the multi-fidelity successive-halving scheduler over the last $(docv) levels of the \
     dataset's fidelity ladder (node count for kripke/hypre, problem size for lulesh): each \
     bracket evaluates a cohort of --n-init configurations at the cheapest rung and promotes the \
     best ceil(n/eta) per rung closure, so most of the budget is spent at a fraction of the \
     full-fidelity cost. $(docv) = 1 degrades to the flat full-fidelity campaign. Composes with \
     --async, --save/--resume, --trace, and --jobs. Hiperbot method only."
  in
  Arg.(value & opt (some int) None & info [ "fidelity" ] ~docv:"R" ~doc)

let brackets_arg =
  let doc = "Successive-halving brackets to run (requires --fidelity; default 4)." in
  Arg.(value & opt (some int) None & info [ "brackets" ] ~docv:"B" ~doc)

let eta_arg =
  let doc =
    "Promotion ratio: each rung closure keeps the best ceil(n/$(docv)) of its n results \
     (requires --fidelity; default 3)."
  in
  Arg.(value & opt (some float) None & info [ "eta" ] ~docv:"F" ~doc)

(* Run [f (Some pool)] on a [jobs]-domain pool, or [f None] when a
   single job needs no pool at all. *)
let with_jobs jobs f =
  if jobs > 1 then Parallel.Pool.with_pool ~num_domains:(jobs - 1) (fun p -> f (Some p))
  else f None

let status_of_outcome = function
  | Resilience.Outcome.Value y -> Dataset.Runlog.Ok y
  | Resilience.Outcome.Transient _ -> Dataset.Runlog.Failed Dataset.Runlog.Transient
  | Resilience.Outcome.Permanent _ -> Dataset.Runlog.Failed Dataset.Runlog.Permanent
  | Resilience.Outcome.Timeout -> Dataset.Runlog.Failed Dataset.Runlog.Timeout
  | Resilience.Outcome.Infeasible _ -> Dataset.Runlog.Failed Dataset.Runlog.Infeasible

let tune_cmd =
  let transfer_from_arg =
    let doc =
      "Load a source run log (written by `tune --save') as a transfer prior, optionally weighted \
       ($(docv) is FILE or FILE:WEIGHT; weight defaults to 1). Repeatable: each log becomes one \
       prior source. Composes with --faults, --resume, --async, --trace, and --jobs. Hiperbot \
       method only."
    in
    Arg.(value & opt_all string [] & info [ "transfer-from" ] ~docv:"FILE[:W]" ~doc)
  in
  let run dataset seed budget method_ alpha n_init proposal sampled verbose trace_file
      trace_summary save resume faults fault_seed retries timeout jobs async transfer_from
      transfer_weighting transfer_decay transfer_gate no_transfer_gate fidelity brackets eta =
    match find_table dataset with
    | Error e -> `Error (false, e)
    | Ok table ->
        let fidelity_ladder = (Hpcsim.Registry.find dataset).Hpcsim.Registry.fidelity in
        let space = Dataset.Table.space table in
        let objective = Dataset.Table.objective_fn table in
        let rng = Prng.Rng.create seed in
        let resilient = resume || faults > 0. || async <> None in
        let gate_opts = resolve_gate transfer_gate no_transfer_gate in
        (* Resolve --transfer-from eagerly so a bad source log fails
           before any tuning starts; the resulting prior rides in the
           options, so every engine path (plain, resilient, resume,
           async) picks it up without further wiring. *)
        let transfer_prior =
          match (transfer_from, gate_opts) with
          | [], _ | _, Error _ -> Ok None
          | files, Ok gate -> (
              match check_source_specs files with
              | Error e -> Error e
              | Ok () -> (
                  match load_transfer_sources ~space files with
                  | Error e -> Error e
                  | Ok sources -> (
                      try
                        Ok
                          (Some
                             (Hiperbot.Tuner.prior_of
                                ~decay:(Hiperbot.Transfer.decay_of_schedule transfer_decay)
                                ?gate
                                (Hiperbot.Transfer.prior_of_sources
                                   ~options:{ Hiperbot.Surrogate.default_options with alpha }
                                   ~weighting:transfer_weighting space sources)))
                      with Invalid_argument msg -> Error msg)))
        in
        if resilient && method_ <> `Hiperbot then
          `Error (false, "--resume, --faults, and --async are only supported with --method hiperbot")
        else if (match async with Some k -> k < 1 | None -> false) then
          `Error (false, "--async K must be at least 1")
        else if resume && save = None then `Error (false, "--resume requires --save PATH")
        else if not (0. <= faults && faults <= 1.) then
          `Error (false, "--faults RATE must be in [0, 1]")
        else if retries < 1 then `Error (false, "--retries must be at least 1")
        else if (match timeout with Some t -> t <= 0. | None -> false) then
          `Error (false, "--timeout must be positive")
        else if (match sampled with Some n -> n < 1 | None -> false) then
          `Error (false, "--sampled-candidates N must be at least 1")
        else if sampled <> None && proposal <> None then
          `Error (false, "--sampled-candidates is incompatible with --proposal")
        else if sampled <> None && method_ <> `Hiperbot then
          `Error (false, "--sampled-candidates is only supported with --method hiperbot")
        else if jobs < 1 then `Error (false, "--jobs must be at least 1")
        else if jobs > 1 && method_ <> `Hiperbot then
          `Error (false, "--jobs is only supported with --method hiperbot")
        else if (trace_file <> None || trace_summary) && method_ <> `Hiperbot then
          `Error (false, "--trace and --trace-summary are only supported with --method hiperbot")
        else if transfer_from <> [] && method_ <> `Hiperbot then
          `Error (false, "--transfer-from is only supported with --method hiperbot")
        else if (transfer_gate <> None || no_transfer_gate) && transfer_from = [] then
          `Error (false, "--transfer-gate and --no-transfer-gate require --transfer-from")
        else if Result.is_error gate_opts then `Error (false, Result.get_error gate_opts)
        else if Result.is_error transfer_prior then
          `Error (false, Result.get_error transfer_prior)
        else if (match fidelity with Some r -> r < 1 | None -> false) then
          `Error (false, "--fidelity R must be at least 1")
        else if fidelity <> None && method_ <> `Hiperbot then
          `Error (false, "--fidelity is only supported with --method hiperbot")
        else if fidelity <> None && proposal <> None then
          `Error (false, "--fidelity is incompatible with --proposal")
        else if fidelity <> None && transfer_from <> [] then
          `Error (false, "--fidelity is incompatible with --transfer-from")
        else if fidelity <> None && faults > 0. then
          `Error (false, "--fidelity is incompatible with --faults")
        else if fidelity = None && (brackets <> None || eta <> None) then
          `Error (false, "--brackets and --eta require --fidelity")
        else if (match brackets with Some b -> b < 1 | None -> false) then
          `Error (false, "--brackets must be at least 1")
        else if (match eta with Some e -> (not (Float.is_finite e)) || e <= 1. | None -> false)
        then `Error (false, "--eta must be finite and greater than 1")
        else if fidelity <> None && fidelity_ladder = None then
          `Error
            ( false,
              Printf.sprintf "dataset %s has no fidelity ladder (fidelity-capable: kripke, \
                              hypre, lulesh)" dataset )
        else if
          match (fidelity, fidelity_ladder) with
          | Some r, Some f -> r > Array.length f.Hpcsim.Registry.levels
          | _ -> false
        then
          `Error
            ( false,
              Printf.sprintf "--fidelity R exceeds the dataset's ladder depth (%d levels)"
                (match fidelity_ladder with
                | Some f -> Array.length f.Hpcsim.Registry.levels
                | None -> 0) )
        else begin
          let summary = if trace_summary then Some (Telemetry.Summary.create ()) else None in
          let telemetry =
            Telemetry.Trace.make
              ((match trace_file with Some p -> [ Telemetry.Trace.jsonl_sink p ] | None -> [])
              @ match summary with Some s -> [ Telemetry.Summary.sink s ] | None -> [])
          in
          let finish_trace () =
            Telemetry.Trace.close telemetry;
            (match trace_file with
            | Some p -> Printf.printf "trace written to %s\n" p
            | None -> ());
            match summary with Some s -> print_string (Telemetry.Summary.render s) | None -> ()
          in
          let best = ref infinity in
          let print_evaluation i config y =
            if verbose || y < !best then begin
              if y < !best then best := y;
              Printf.printf "%4d  %10.4g  %s\n" i y (Param.Space.to_string space config)
            end
          in
          let print_tuner_result (result : Hiperbot.Tuner.result) =
            (match result.Hiperbot.Tuner.final_surrogate with
            | Some s ->
                Printf.printf "parameter importance: %s\n"
                  (Hiperbot.Importance.to_string (Hiperbot.Importance.of_surrogate s))
            | None -> ());
            let n_fail = Array.length result.Hiperbot.Tuner.failures in
            if n_fail > 0 || result.Hiperbot.Tuner.n_attempts > Array.length result.Hiperbot.Tuner.history
            then
              Printf.printf "failures: %d  attempts: %d  backoff cost: %.4g\n" n_fail
                result.Hiperbot.Tuner.n_attempts result.Hiperbot.Tuner.retry_cost;
            Baselines.Outcome.of_tuner_result result
          in
          let hiperbot_options () =
            let strategy =
              match proposal with
              | Some k -> Hiperbot.Strategy.Proposal { n_candidates = k }
              | None -> Hiperbot.Strategy.Ranking
            in
            {
              Hiperbot.Tuner.default_options with
              n_init;
              strategy;
              surrogate = { Hiperbot.Surrogate.default_options with alpha };
              prior = (match transfer_prior with Ok p -> p | Error _ -> None);
              sampled_candidates = sampled;
            }
          in
          if fidelity <> None then begin
            (* Multi-fidelity path: successive-halving brackets over the
               dataset's natural fidelity ladder, rung state persisted as
               #fid / #rung run-log lines for bit-exact resume. *)
            let r = Option.get fidelity in
            let fid = Option.get fidelity_ladder in
            let n_levels = Array.length fid.Hpcsim.Registry.levels in
            let offset = n_levels - r in
            let costs = Array.init r (fun i -> fid.Hpcsim.Registry.cost (offset + i)) in
            let plan =
              {
                Hiperbot.Fidelity.costs;
                eta = Option.value eta ~default:3.;
                cohort = n_init;
                brackets = Option.value brackets ~default:4;
                low_weight = 0.25;
                cost_budget = None;
              }
            in
            let fid_objective ~rung config =
              fid.Hpcsim.Registry.objective_at (offset + rung) config
            in
            let k = Option.value async ~default:1 in
            let existing_log =
              match save with
              | Some path when resume && Sys.file_exists path ->
                  Some (Dataset.Runlog.load ~recover:true path)
              | _ -> None
            in
            match existing_log with
            | Some log
              when Param.Space.specs log.Dataset.Runlog.space <> Param.Space.specs space ->
                `Error (false, "run log space does not match the dataset")
            | _ -> begin
                let writer =
                  match (save, existing_log) with
                  | Some path, Some log -> Some (Dataset.Runlog.writer_resume ~path log)
                  | Some path, None ->
                      Some
                        (Dataset.Runlog.writer_create ~path ~name:("tune:" ^ dataset) ~seed
                           ~space)
                  | None, _ -> None
                in
                let on_eval i config y =
                  (match writer with
                  | Some w ->
                      Dataset.Runlog.writer_record w
                        {
                          Dataset.Runlog.index = i;
                          config;
                          status = Dataset.Runlog.Ok y;
                          attempts = 1;
                        }
                  | None -> ());
                  print_evaluation i config y
                in
                let on_fid (f : Dataset.Runlog.fid) =
                  (match writer with
                  | Some w -> Dataset.Runlog.writer_record_fid w f
                  | None -> ());
                  if verbose then
                    Printf.printf "  b%d/r%d  %10.4g  %s\n" f.Dataset.Runlog.f_bracket
                      f.Dataset.Runlog.f_rung f.Dataset.Runlog.f_value
                      (Param.Space.to_string space f.Dataset.Runlog.f_config)
                in
                let on_rung (rg : Dataset.Runlog.rung) =
                  (match writer with
                  | Some w -> Dataset.Runlog.writer_record_rung w rg
                  | None -> ());
                  Printf.printf "bracket %d rung %d closed: %d evaluated, %d promoted (best %.4g)\n"
                    rg.Dataset.Runlog.r_bracket rg.Dataset.Runlog.r_rung
                    rg.Dataset.Runlog.r_evaluated rg.Dataset.Runlog.r_promoted
                    rg.Dataset.Runlog.r_best
                in
                let options = hiperbot_options () in
                let fid_result =
                  with_jobs jobs (fun pool ->
                      match existing_log with
                      | Some log ->
                          if log.Dataset.Runlog.seed <> seed then
                            Printf.printf "resuming with the log's seed %d (ignoring --seed %d)\n"
                              log.Dataset.Runlog.seed seed;
                          Printf.printf "resuming after %d recorded evaluations\n"
                            (Array.length log.Dataset.Runlog.entries);
                          Hiperbot.Fidelity.resume ~telemetry ~options ~on_eval ~on_fid ~on_rung
                            ?pool ~plan ~k ~log ~objective:fid_objective ~budget ()
                      | None ->
                          Hiperbot.Fidelity.run ~telemetry ~options ~on_eval ~on_fid ~on_rung
                            ?pool ~plan ~k ~rng ~space ~objective:fid_objective ~budget ())
                in
                (match writer with Some w -> Dataset.Runlog.writer_close w | None -> ());
                finish_trace ();
                match fid_result with
                | Stdlib.Error err ->
                    `Error
                      ( false,
                        Printf.sprintf
                          "no full-fidelity evaluation completed (%d low-fidelity evaluations \
                           spent); raise --budget or lower --fidelity"
                          err.Hiperbot.Tuner.error_attempts )
                | Stdlib.Ok fres ->
                    let outcome = print_tuner_result fres.Hiperbot.Fidelity.run in
                    let rungs =
                      String.concat "/"
                        (Array.to_list
                           (Array.map string_of_int fres.Hiperbot.Fidelity.rung_evals))
                    in
                    Printf.printf
                      "fidelity: %d brackets, %s evaluations per rung, total cost %.4g \
                       full-fidelity-equivalents\n"
                      fres.Hiperbot.Fidelity.n_brackets rungs fres.Hiperbot.Fidelity.total_cost;
                    Printf.printf "best after %d evaluations: %.4g\n"
                      (Array.length outcome.Baselines.Outcome.history)
                      outcome.Baselines.Outcome.best_value;
                    Printf.printf "  %s\n"
                      (Param.Space.to_string space outcome.Baselines.Outcome.best_config);
                    Printf.printf "exhaustive best: %.4g\n" (Dataset.Table.best_value table);
                    (match save with
                    | Some path -> Printf.printf "run log written to %s\n" path
                    | None -> ());
                    `Ok ()
              end
          end
          else if resilient then begin
            (* Resilient path: outcome-taxonomy objective, retry policy,
               flush-per-entry v2 run log, optional resume. *)
            let policy =
              { Resilience.Policy.default with max_attempts = retries; timeout }
            in
            let fault_spec =
              if faults > 0. then
                Some
                  (Hpcsim.Faults.standard
                     ~seed:(Option.value fault_seed ~default:(seed + 7919))
                     ~rate:faults)
              else None
            in
            let outcome_objective ~attempt c =
              match fault_spec with
              | Some fs -> Hpcsim.Faults.inject fs objective ~attempt c
              | None -> Resilience.Outcome.Value (objective c)
            in
            let existing_log =
              match save with
              | Some path when resume && Sys.file_exists path ->
                  Some (Dataset.Runlog.load ~recover:true path)
              | _ -> None
            in
            (match existing_log with
            | Some log
              when Param.Space.specs log.Dataset.Runlog.space <> Param.Space.specs space ->
                `Error (false, "run log space does not match the dataset")
            | _ -> begin
                let writer =
                  match (save, existing_log) with
                  | Some path, Some log -> Some (Dataset.Runlog.writer_resume ~path log)
                  | Some path, None ->
                      Some
                        (Dataset.Runlog.writer_create ~path ~name:("tune:" ^ dataset) ~seed
                           ~space)
                  | None, _ -> None
                in
                let on_outcome i config (v : Resilience.Evaluator.verdict) =
                  (match writer with
                  | Some w ->
                      Dataset.Runlog.writer_record w
                        {
                          Dataset.Runlog.index = i;
                          config;
                          status = status_of_outcome v.Resilience.Evaluator.outcome;
                          attempts = v.Resilience.Evaluator.attempts;
                        }
                  | None -> ());
                  match v.Resilience.Evaluator.outcome with
                  | Resilience.Outcome.Value y -> print_evaluation i config y
                  | failure ->
                      if verbose then
                        Printf.printf "%4d  %10s  %s\n" i
                          (Resilience.Outcome.kind failure)
                          (Param.Space.to_string space config)
                in
                let options = hiperbot_options () in
                (* Gate decisions join the run log as #gate lines, so
                   an interrupted gated campaign resumes with its
                   trust verdicts verified against the record. *)
                let on_gate g =
                  match writer with
                  | Some w -> Dataset.Runlog.writer_record_gate w g
                  | None -> ()
                in
                let tuner_result =
                  with_jobs jobs (fun pool ->
                      match existing_log with
                      | Some log -> begin
                          if log.Dataset.Runlog.seed <> seed then
                            Printf.printf "resuming with the log's seed %d (ignoring --seed %d)\n"
                              log.Dataset.Runlog.seed seed;
                          Printf.printf "resuming after %d recorded evaluations\n"
                            (Array.length log.Dataset.Runlog.entries);
                          match async with
                          | Some k ->
                              Hiperbot.Tuner.resume_async ~telemetry ~options ~policy ~on_outcome
                                ~on_gate ?pool ~k ~log ~objective:outcome_objective ~budget ()
                          | None ->
                              Hiperbot.Tuner.resume ~telemetry ~options ~policy ~on_outcome
                                ~on_gate ?pool ~log ~objective:outcome_objective ~budget ()
                        end
                      | None -> (
                          match async with
                          | Some k ->
                              Hiperbot.Tuner.run_async ~telemetry ~options ~policy ~on_outcome
                                ~on_gate ?pool ~k ~rng ~space ~objective:outcome_objective ~budget
                                ()
                          | None ->
                              Hiperbot.Tuner.run_with_policy ~telemetry ~options ~policy
                                ~on_outcome ~on_gate ?pool ~rng ~space
                                ~objective:outcome_objective ~budget ()))
                in
                (match writer with Some w -> Dataset.Runlog.writer_close w | None -> ());
                finish_trace ();
                match tuner_result with
                | Stdlib.Error err ->
                    `Error
                      ( false,
                        Printf.sprintf
                          "every evaluation failed (%d failures, %d attempts); no best \
                           configuration"
                          (Array.length err.Hiperbot.Tuner.error_failures)
                          err.Hiperbot.Tuner.error_attempts )
                | Stdlib.Ok result ->
                    let outcome = print_tuner_result result in
                    Printf.printf "best after %d evaluations: %.4g\n"
                      (Array.length outcome.Baselines.Outcome.history)
                      outcome.Baselines.Outcome.best_value;
                    Printf.printf "  %s\n"
                      (Param.Space.to_string space outcome.Baselines.Outcome.best_config);
                    Printf.printf "exhaustive best: %.4g\n" (Dataset.Table.best_value table);
                    (match save with
                    | Some path -> Printf.printf "run log written to %s\n" path
                    | None -> ());
                    `Ok ()
              end)
          end
          else begin
            let writer =
              Option.map
                (fun path ->
                  Dataset.Runlog.writer_create ~path ~name:("tune:" ^ dataset) ~seed ~space)
                save
            in
            let on_evaluation i config y =
              (match writer with
              | Some w ->
                  Dataset.Runlog.writer_record w
                    {
                      Dataset.Runlog.index = i;
                      config;
                      status = Dataset.Runlog.Ok y;
                      attempts = 1;
                    }
              | None -> ());
              print_evaluation i config y
            in
            let outcome =
              match method_ with
              | `Random -> Baselines.Random_search.run ~rng ~space ~objective ~budget ()
              | `Geist -> Baselines.Geist.run ~rng ~space ~objective ~budget ()
              | `Gp -> Baselines.Gp_tuner.run ~rng ~space ~objective ~budget ()
              | `Gbt -> Baselines.Gbt_tuner.run ~rng ~space ~objective ~budget ()
              | `Hiperbot ->
                  let options = hiperbot_options () in
                  let on_gate g =
                    match writer with
                    | Some w -> Dataset.Runlog.writer_record_gate w g
                    | None -> ()
                  in
                  print_tuner_result
                    (with_jobs jobs (fun pool ->
                         Hiperbot.Tuner.run ~telemetry ~options ~on_evaluation ~on_gate ?pool ~rng
                           ~space ~objective ~budget ()))
            in
            (match writer with Some w -> Dataset.Runlog.writer_close w | None -> ());
            finish_trace ();
            Printf.printf "best after %d evaluations: %.4g\n"
              (Array.length outcome.Baselines.Outcome.history)
              outcome.Baselines.Outcome.best_value;
            Printf.printf "  %s\n" (Param.Space.to_string space outcome.Baselines.Outcome.best_config);
            Printf.printf "exhaustive best: %.4g\n" (Dataset.Table.best_value table);
            (match save with
            | Some path -> Printf.printf "run log written to %s\n" path
            | None -> ());
            `Ok ()
          end
        end
  in
  Cmd.v
    (Cmd.info "tune" ~doc:"Run a tuner on a dataset and report the best configuration found.")
    Term.(
      ret
        (const run $ dataset_arg $ seed_arg $ budget_arg 150 $ method_arg $ alpha_arg $ n_init_arg
       $ proposal_arg $ sampled_arg $ verbose_arg $ trace_file_arg $ trace_summary_arg $ save_arg
       $ resume_arg $ faults_arg $ fault_seed_arg $ retries_arg $ timeout_arg $ jobs_arg
       $ async_arg $ transfer_from_arg $ weighting_arg $ decay_arg $ gate_thresh_arg
       $ no_gate_arg $ fidelity_arg $ brackets_arg $ eta_arg))

(* ---- transfer ---- *)

let transfer_cmd =
  let source_arg =
    let doc =
      "Source-domain dataset whose rows become a prior, optionally weighted ($(docv) is NAME or \
       NAME:WEIGHT; weight defaults to --weight). Repeatable for multi-source transfer."
    in
    Arg.(non_empty & opt_all string [] & info [ "source" ] ~docv:"NAME[:W]" ~doc)
  in
  let target_arg =
    let doc = "Target-domain dataset (tuned with the sources as priors)." in
    Arg.(required & opt (some string) None & info [ "target" ] ~docv:"NAME" ~doc)
  in
  let weight_arg =
    let doc = "Default prior weight w (paper eqs. 9-10) for sources without their own :WEIGHT." in
    Arg.(value & opt float 1.0 & info [ "w"; "weight" ] ~docv:"W" ~doc)
  in
  let run sources target seed budget weight weighting decay transfer_gate no_transfer_gate =
    let named =
      List.map
        (fun s ->
          match split_weight s with
          | name, w when String.contains s ':' -> (name, w)
          | name, _ -> (name, weight))
        sources
    in
    let tables =
      List.fold_left
        (fun acc (name, w) ->
          match (acc, find_table name) with
          | Error e, _ -> Error e
          | Ok _, Error e -> Error e
          | Ok l, Ok t -> Ok ((t, w) :: l))
        (Ok []) named
    in
    match (check_source_specs sources, resolve_gate transfer_gate no_transfer_gate) with
    | Error e, _ | _, Error e -> `Error (false, e)
    | Ok (), Ok gate -> (
    match (tables, find_table target) with
    | Error e, _ | _, Error e -> `Error (false, e)
    | Ok rev_sources, Ok trgt ->
        let src_tables = List.rev rev_sources in
        let space = Dataset.Table.space trgt in
        if
          List.exists
            (fun (src, _) -> Param.Space.specs (Dataset.Table.space src) <> Param.Space.specs space)
            src_tables
        then `Error (false, "source and target datasets have different parameter spaces")
        else begin
          let source_obs =
            List.map
              (fun (src, w) ->
                ( Array.init (Dataset.Table.size src) (fun i ->
                      (Dataset.Table.config src i, Dataset.Table.objective src i)),
                  w ))
              src_tables
          in
          let rng = Prng.Rng.create seed in
          let names = Array.of_list (List.map fst named) in
          let on_gate (g : Dataset.Runlog.gate) =
            if g.Dataset.Runlog.g_source < 0 then
              Printf.printf "gate: every source dropped at refit %d; continuing without priors\n"
                g.Dataset.Runlog.g_refit
            else
              Printf.printf "gate: %s source %s at refit %d (trust %.3f)\n"
                g.Dataset.Runlog.g_action
                names.(g.Dataset.Runlog.g_source)
                g.Dataset.Runlog.g_refit g.Dataset.Runlog.g_trust
          in
          let result =
            Hiperbot.Transfer.run_multi ~gate ~on_gate ~weighting ~schedule:decay ~rng ~space
              ~sources:source_obs ~objective:(Dataset.Table.objective_fn trgt) ~budget ()
          in
          Printf.printf "best after %d evaluations: %.4g\n"
            (Array.length result.Hiperbot.Tuner.history)
            result.Hiperbot.Tuner.best_value;
          Printf.printf "  %s\n" (Param.Space.to_string space result.Hiperbot.Tuner.best_config);
          Printf.printf "exhaustive target best: %.4g\n" (Dataset.Table.best_value trgt);
          let good = Metrics.Recall.tolerance_good_set trgt 0.10 in
          Printf.printf "recall at 10%% tolerance: %.3f (%d good configurations)\n"
            (Metrics.Recall.recall good result.Hiperbot.Tuner.history)
            good.Metrics.Recall.count;
          `Ok ()
        end)
  in
  Cmd.v
    (Cmd.info "transfer" ~doc:"Transfer-learn from source dataset(s) onto a target dataset.")
    Term.(
      ret
        (const run $ source_arg $ target_arg $ seed_arg $ budget_arg 278 $ weight_arg
       $ weighting_arg $ decay_arg $ gate_thresh_arg $ no_gate_arg))

(* ---- tune-csv ---- *)

let tune_csv_cmd =
  let csv_arg =
    let doc = "CSV file: parameter columns, then one objective column. Parameter types are inferred (numeric columns become ordinal, the rest categorical)." in
    Arg.(required & opt (some file) None & info [ "csv" ] ~docv:"PATH" ~doc)
  in
  let run path seed budget alpha n_init =
    let text =
      let ic = open_in path in
      let n = in_channel_length ic in
      let s = really_input_string ic n in
      close_in ic;
      s
    in
    match Dataset.Infer.table_of_csv ~name:(Filename.basename path) text with
    | exception Failure msg -> `Error (false, msg)
    | table ->
        let space = Dataset.Table.space table in
        Printf.printf "inferred space (%d measured rows):\n" (Dataset.Table.size table);
        Array.iter (fun spec -> Format.printf "  %a@." Param.Spec.pp spec) (Param.Space.specs space);
        let options =
          {
            Hiperbot.Tuner.default_options with
            n_init;
            surrogate = { Hiperbot.Surrogate.default_options with alpha };
          }
        in
        let result =
          Hiperbot.Tuner.run ~options
            ~candidates:(Dataset.Table.configs table)
            ~rng:(Prng.Rng.create seed) ~space
            ~objective:(Dataset.Table.objective_fn table)
            ~budget ()
        in
        Printf.printf "best after %d evaluations: %.4g\n"
          (Array.length result.Hiperbot.Tuner.history)
          result.Hiperbot.Tuner.best_value;
        Printf.printf "  %s\n" (Param.Space.to_string space result.Hiperbot.Tuner.best_config);
        Printf.printf "best row in the file: %.4g\n" (Dataset.Table.best_value table);
        (match result.Hiperbot.Tuner.final_surrogate with
        | Some s ->
            Printf.printf "parameter importance: %s\n"
              (Hiperbot.Importance.to_string (Hiperbot.Importance.of_surrogate s))
        | None -> ());
        `Ok ()
  in
  Cmd.v
    (Cmd.info "tune-csv" ~doc:"Tune over the measured rows of a CSV study (space inferred).")
    Term.(ret (const run $ csv_arg $ seed_arg $ budget_arg 100 $ alpha_arg $ n_init_arg))

(* ---- importance ---- *)

let importance_cmd =
  let samples_arg =
    let doc = "Fit the surrogate on a random subset of $(docv) rows (default: all rows)." in
    Arg.(value & opt (some int) None & info [ "samples" ] ~docv:"N" ~doc)
  in
  let run dataset seed samples =
    match find_table dataset with
    | Error e -> `Error (false, e)
    | Ok table ->
        let space = Dataset.Table.space table in
        let all =
          Array.init (Dataset.Table.size table) (fun i ->
              (Dataset.Table.config table i, Dataset.Table.objective table i))
        in
        let obs =
          match samples with
          | None -> all
          | Some n ->
              let n = min n (Array.length all) in
              let rng = Prng.Rng.create seed in
              let idx = Prng.Rng.sample_without_replacement rng n (Array.length all) in
              Array.map (fun i -> all.(i)) idx
        in
        let ranking = Hiperbot.Importance.of_observations space obs in
        Printf.printf "parameter importance (JS divergence, %d observations):\n" (Array.length obs);
        Array.iter (fun (name, s) -> Printf.printf "  %-12s %.4f\n" name s) ranking;
        `Ok ()
  in
  Cmd.v
    (Cmd.info "importance" ~doc:"Rank a dataset's parameters by Jensen-Shannon importance.")
    Term.(ret (const run $ dataset_arg $ seed_arg $ samples_arg))

(* ---- export ---- *)

let export_cmd =
  let output_arg =
    let doc = "Output CSV path (defaults to stdout)." in
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"PATH" ~doc)
  in
  let run dataset output =
    match find_table dataset with
    | Error e -> `Error (false, e)
    | Ok table ->
        let csv = Dataset.Table.to_csv table in
        (match output with
        | None -> print_string csv
        | Some path ->
            let oc = open_out path in
            output_string oc csv;
            close_out oc;
            Printf.printf "wrote %d rows to %s\n" (Dataset.Table.size table) path);
        `Ok ()
  in
  Cmd.v
    (Cmd.info "export" ~doc:"Export a dataset as CSV.")
    Term.(ret (const run $ dataset_arg $ output_arg))

(* ---- replay ---- *)

let replay_cmd =
  let log_arg =
    let doc = "Run log written by `tune --save'." in
    Arg.(required & opt (some file) None & info [ "log" ] ~docv:"PATH" ~doc)
  in
  let against_arg =
    let doc = "Score the log's recall against this built-in dataset." in
    Arg.(value & opt (some string) None & info [ "against" ] ~docv:"NAME" ~doc)
  in
  let run path against =
    match Dataset.Runlog.load ~recover:true path with
    | exception Failure msg -> `Error (false, msg)
    | log ->
        let space = log.Dataset.Runlog.space in
        let history = Dataset.Runlog.history log in
        Printf.printf "run %S (seed %d): %d evaluations, %d failures\n" log.Dataset.Runlog.name
          log.Dataset.Runlog.seed (Array.length history)
          (Array.length log.Dataset.Runlog.entries - Array.length history);
        List.iter
          (fun kind ->
            let n = Dataset.Runlog.count_kind log kind in
            if n > 0 then
              Printf.printf "  %s: %d\n" (Dataset.Runlog.failure_kind_to_string kind) n)
          [
            Dataset.Runlog.Crash;
            Dataset.Runlog.Transient;
            Dataset.Runlog.Permanent;
            Dataset.Runlog.Timeout;
          ];
        (match Dataset.Runlog.best log with
        | Some (c, y) -> Printf.printf "best: %.4g at %s\n" y (Param.Space.to_string space c)
        | None -> Printf.printf "no successful evaluation\n");
        (match against with
        | None -> `Ok ()
        | Some name -> begin
            match find_table name with
            | Error e -> `Error (false, e)
            | Ok table ->
                if Param.Space.specs (Dataset.Table.space table) <> Param.Space.specs space then
                  `Error (false, "run log space does not match the dataset")
                else begin
                  let good = Metrics.Recall.percentile_good_set table 0.05 in
                  Printf.printf "top-5%% recall vs %s: %.3f (%d good configs)\n" name
                    (Metrics.Recall.recall good history)
                    good.Metrics.Recall.count;
                  `Ok ()
                end
          end)
  in
  Cmd.v
    (Cmd.info "replay" ~doc:"Inspect a saved run log, optionally scoring it against a dataset.")
    Term.(ret (const run $ log_arg $ against_arg))

(* ---- trace ---- *)

let trace_cmd =
  let log_arg =
    let doc = "Campaign trace written by `tune --trace'." in
    Arg.(required & opt (some file) None & info [ "log" ] ~docv:"PATH" ~doc)
  in
  let run path =
    match Telemetry.Tracefile.load ~recover:true path with
    | exception Failure msg -> `Error (false, msg)
    | tf ->
        Printf.printf "trace %s (schema %s v%d): %d events%s\n" path Telemetry.Tracefile.schema
          tf.Telemetry.Tracefile.version
          (Array.length tf.Telemetry.Tracefile.events)
          (if tf.Telemetry.Tracefile.dropped then " (truncated final line dropped)" else "");
        print_string (Telemetry.Summary.render (Telemetry.Summary.of_trace tf));
        `Ok ()
  in
  Cmd.v
    (Cmd.info "trace" ~doc:"Inspect and summarize a saved campaign trace.")
    Term.(ret (const run $ log_arg))

(* ---- serve ---- *)

let serve_cmd =
  let dir_arg =
    let doc =
      "Session directory: every session persists to $(docv)/<name>.runlog and can be \
       recovered after a crash by re-opening it with the same seed and space."
    in
    Arg.(value & opt (some string) None & info [ "dir" ] ~docv:"DIR" ~doc)
  in
  let run dir =
    let server = Hiperbot.Serve.create ?dir () in
    let rec loop () =
      match In_channel.input_line In_channel.stdin with
      | None -> ()
      | Some line ->
          print_endline (Hiperbot.Serve.handle server line);
          flush stdout;
          loop ()
    in
    loop ();
    Hiperbot.Serve.close_all server;
    `Ok ()
  in
  let doc = "Run the tuning server: one request line on stdin, one response line on stdout." in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Multiplexes any number of concurrent tuning campaigns over a line protocol. \
         Clients open sessions, ask for configurations and report measurements; the \
         server never evaluates anything itself.";
      `P "Protocol (one request per line; responses start with `ok' or `err'):";
      `Pre
        "  open <name> seed=<n> budget=<n> space=<spec;...> [k=<n>] [n_init=<n>] \
         [batch=<n>] [early_stop=<n>]\n\
        \  suggest <name>\n\
        \  report <name> <id> ok:<value>|fail:<kind> [attempts=<n>]\n\
        \  status <name>\n\
        \  close <name>";
      `P
        "Specs use the run-log wire form, e.g. \
         `space=level=cat:O0,O1,O2;unroll=ord:1,2,4'.";
    ]
  in
  Cmd.v (Cmd.info "serve" ~doc ~man) Term.(ret (const run $ dir_arg))

(* ---- compare ---- *)

let compare_cmd =
  let reps_arg =
    let doc = "Seeded repetitions per method." in
    Arg.(value & opt int 5 & info [ "reps" ] ~docv:"N" ~doc)
  in
  let run dataset budget reps =
    match find_table dataset with
    | Error e -> `Error (false, e)
    | Ok table ->
        let space = Dataset.Table.space table in
        let objective = Dataset.Table.objective_fn table in
        let good = Metrics.Recall.percentile_good_set table 0.05 in
        Printf.printf "dataset %s: %d configs, exhaustive best %.4g, %d good (top 5%%), budget %d, reps %d\n"
          dataset (Dataset.Table.size table) (Dataset.Table.best_value table)
          good.Metrics.Recall.count budget reps;
        Printf.printf "%-10s %16s %16s\n" "method" "best (mean+-std)" "recall (mean+-std)";
        let methods =
          [
            ("random", fun ~rng ~budget -> Baselines.Random_search.run ~rng ~space ~objective ~budget ());
            ("geist", fun ~rng ~budget -> Baselines.Geist.run ~rng ~space ~objective ~budget ());
            ("gbt", fun ~rng ~budget -> Baselines.Gbt_tuner.run ~rng ~space ~objective ~budget ());
            ( "hiperbot",
              fun ~rng ~budget ->
                Baselines.Outcome.of_tuner_result
                  (Hiperbot.Tuner.run ~rng ~space ~objective ~budget ()) );
          ]
        in
        List.iter
          (fun (label, run) ->
            let d =
              Metrics.Runner.sweep_detailed ~reps ~base_seed:100 ~sample_sizes:[| budget |] ~good ~run
            in
            let p = d.Metrics.Runner.points.(0) in
            Printf.printf "%-10s %8.4g+-%-7.3g %8.3f+-%-6.3f\n%!" label p.Metrics.Runner.best_mean
              p.Metrics.Runner.best_std p.Metrics.Runner.recall_mean p.Metrics.Runner.recall_std)
          methods;
        `Ok ()
  in
  Cmd.v
    (Cmd.info "compare" ~doc:"Compare tuning methods on a dataset at one budget.")
    Term.(ret (const run $ dataset_arg $ budget_arg 150 $ reps_arg))

let () =
  let doc = "HiPerBOt: Bayesian-optimization autotuning for HPC applications" in
  let info = Cmd.info "hiperbot" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            list_cmd;
            describe_cmd;
            tune_cmd;
            tune_csv_cmd;
            transfer_cmd;
            importance_cmd;
            export_cmd;
            replay_cmd;
            trace_cmd;
            compare_cmd;
            serve_cmd;
          ]))
